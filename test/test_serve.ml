(* Serve suite: the persistent kernel-launch service.

   Admission control (Rejected / Shed / retry-success), deadline
   enforcement (queued and late-finish), the compiled-kernel cache
   (hits, LRU eviction, virtual and host-level single-flight) and the
   determinism contract: replaying one trace yields byte-identical
   snapshots for any pool width and either evaluation engine. *)

module Scheduler = Serve.Scheduler
module Request = Serve.Request
module Metrics = Serve.Metrics
module Fleet = Serve.Fleet
module Traffic = Serve.Traffic

let cfg = Gpusim.Config.small

let spec ?(at = 0.0) ?(kernel = "saxpy") ?(size = 16) ?(teams = 1)
    ?(threads = 32) ?(simdlen = 8) ?(guardize = false) ?deadline
    ?(priority = 0) ?(seed = 1) ?(tenant = "-") ?device id =
  {
    Request.id;
    at;
    kernel;
    size;
    teams;
    threads;
    simdlen;
    guardize;
    deadline;
    priority;
    seed;
    tenant;
    device;
  }

let conf ?(queue_bound = 4) ?(servers = 1) ?(cache = 8) ?(retries = 0)
    ?(backoff = 500.0) ?(breaker = 4) ?slo ?(window = 20_000.0) () =
  {
    Scheduler.cfg;
    queue_bound;
    servers;
    cache_capacity = cache;
    max_retries = retries;
    backoff;
    breaker;
    slo;
    window;
    knobs = Openmp.Offload.default_knobs;
  }

let outcome = Alcotest.testable (Fmt.of_to_string Scheduler.outcome_to_string) ( = )

let with_env name value f =
  let saved = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv name (Option.value saved ~default:"");
      (* re-sync the cached fault plan: later suites must run disarmed *)
      Gpusim.Fault.refresh_from_env ())
    f

let outcome_of (reports : Scheduler.rq_report list) id =
  (List.nth reports id).Scheduler.outcome

(* --- admission control ----------------------------------------------- *)

let test_admission_rejection () =
  (* one server, no queue, no retries: of two simultaneous arrivals the
     second must be rejected outright *)
  let reports, m =
    Scheduler.run
      (conf ~queue_bound:0 ~retries:0 ())
      [ spec ~at:0.0 0; spec ~at:1.0 1 ]
  in
  Alcotest.check outcome "first completes" Scheduler.Completed
    (outcome_of reports 0);
  Alcotest.check outcome "second rejected" Scheduler.Rejected
    (outcome_of reports 1);
  Alcotest.(check int) "rejected counted" 1 m.Metrics.rejected;
  Alcotest.(check int) "one launch only" 1 m.Metrics.launches;
  Alcotest.(check (float 0.0))
    "rejected request never started" (-1.0)
    (List.nth reports 1).Scheduler.start

let test_retry_success () =
  (* same contention, but with a retry budget and a backoff long enough
     to outlive the first request's service time: the second request
     must come back and complete on a later attempt *)
  let reports, m =
    Scheduler.run
      (conf ~queue_bound:0 ~retries:8 ~backoff:2000.0 ())
      [ spec ~at:0.0 0; spec ~at:1.0 1 ]
  in
  Alcotest.check outcome "second eventually completes" Scheduler.Completed
    (outcome_of reports 1);
  let r1 = List.nth reports 1 in
  Alcotest.(check bool) "took more than one attempt" true (r1.Scheduler.attempts > 1);
  Alcotest.(check int) "retries counted" (r1.Scheduler.attempts - 1) m.Metrics.retries;
  Alcotest.(check int) "both completed" 2 m.Metrics.completed

let test_shed_after_retries () =
  (* a single retry with a tiny backoff lands while the server is still
     busy: the budget exhausts and the request is shed *)
  let reports, m =
    Scheduler.run
      (conf ~queue_bound:0 ~retries:1 ~backoff:1.0 ())
      [ spec ~at:0.0 0; spec ~at:1.0 1 ]
  in
  Alcotest.check outcome "second shed" Scheduler.Shed (outcome_of reports 1);
  Alcotest.(check int) "shed counted" 1 m.Metrics.shed;
  Alcotest.(check int) "its retry counted" 1 m.Metrics.retries

(* --- deadlines -------------------------------------------------------- *)

let test_deadline_expires_queued () =
  (* the second request's deadline passes while it waits in the queue:
     it must never launch *)
  let reports, m =
    Scheduler.run (conf ())
      [ spec ~at:0.0 0; spec ~at:1.0 ~deadline:10.0 1 ]
  in
  Alcotest.check outcome "timed out" Scheduler.Timed_out (outcome_of reports 1);
  let r1 = List.nth reports 1 in
  Alcotest.(check (float 0.0)) "never dispatched" (-1.0) r1.Scheduler.start;
  Alcotest.(check int) "only one launch" 1 m.Metrics.launches;
  Alcotest.(check int) "timed-out counted" 1 m.Metrics.timed_out

let test_deadline_late_finish () =
  (* a lone request whose deadline falls inside its own service time:
     it runs (the work is done) but reports Timed_out *)
  let reports, m =
    Scheduler.run (conf ()) [ spec ~at:0.0 ~deadline:50.0 0 ]
  in
  let r0 = List.nth reports 0 in
  Alcotest.check outcome "late finish times out" Scheduler.Timed_out
    r0.Scheduler.outcome;
  Alcotest.(check bool) "it did dispatch" true (r0.Scheduler.start >= 0.0);
  Alcotest.(check int) "the launch happened" 1 m.Metrics.launches;
  Alcotest.(check int) "not counted completed" 0 m.Metrics.completed

(* --- the compile cache ------------------------------------------------ *)

let test_cache_hit_and_virtual_join () =
  (* two servers, identical kernels arriving within the compile window:
     the second joins the in-flight compile (paying only residual wait);
     a third, arriving after it lands, is a plain hit *)
  let reports, m =
    Scheduler.run
      (conf ~servers:2 ())
      [ spec ~at:0.0 0; spec ~at:1.0 1; spec ~at:50000.0 2 ]
  in
  let cache i = (List.nth reports i).Scheduler.cache in
  Alcotest.(check string) "first misses" "miss"
    (Scheduler.cache_status_to_string (cache 0));
  Alcotest.(check string) "second joins" "join"
    (Scheduler.cache_status_to_string (cache 1));
  Alcotest.(check string) "third hits" "hit"
    (Scheduler.cache_status_to_string (cache 2));
  let r1 = List.nth reports 1 in
  let r0 = List.nth reports 0 in
  Alcotest.(check bool) "join pays only residual compile wait" true
    (r1.Scheduler.compile_ticks > 0.0
    && r1.Scheduler.compile_ticks < r0.Scheduler.compile_ticks);
  Alcotest.(check int) "metrics fold the counters" 1 m.Metrics.cache_hits;
  Alcotest.(check int) "one miss" 1 m.Metrics.cache_misses;
  Alcotest.(check int) "one join" 1 m.Metrics.cache_joins

let test_cache_lru_eviction () =
  (* capacity 1 with alternating kernels: every lookup after the first
     evicts the resident entry, so a returning kernel misses again *)
  let specs =
    [
      spec ~at:0.0 ~kernel:"saxpy" 0;
      spec ~at:100000.0 ~kernel:"rowsum" 1;
      spec ~at:200000.0 ~kernel:"saxpy" 2;
    ]
  in
  let _, m1 = Scheduler.run (conf ~cache:1 ()) specs in
  Alcotest.(check int) "capacity 1: all misses" 3 m1.Metrics.cache_misses;
  Alcotest.(check bool) "capacity 1: evicts" true (m1.Metrics.cache_evictions >= 2);
  let _, m2 = Scheduler.run (conf ~cache:2 ()) specs in
  Alcotest.(check int) "capacity 2: the return hits" 1 m2.Metrics.cache_hits;
  Alcotest.(check int) "capacity 2: no evictions" 0 m2.Metrics.cache_evictions

let test_cache_disabled () =
  let specs = [ spec ~at:0.0 0; spec ~at:100000.0 1 ] in
  let _, m = Scheduler.run (conf ~cache:0 ()) specs in
  Alcotest.(check int) "capacity 0 recompiles every request" 2
    m.Metrics.cache_misses;
  Alcotest.(check int) "and never hits" 0 m.Metrics.cache_hits

let test_host_single_flight () =
  (* the host-level cache: many domains race on one key, the compile
     thunk must run exactly once and everyone gets the same result *)
  let cache = Serve.Cache.create ~capacity:4 in
  let kernel = Request.kernel_of_spec (spec 0) in
  let key = Openmp.Offload.cache_key kernel in
  let compiles = Atomic.make 0 in
  let compile () =
    Atomic.incr compiles;
    (* widen the in-flight window so the joiners really do overlap *)
    Unix.sleepf 0.02;
    Openmp.Offload.compile kernel
  in
  let worker () = fst (Serve.Cache.find_or_compile cache ~key ~compile) in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  let statuses = Array.map Domain.join domains in
  Alcotest.(check int) "compile ran exactly once" 1 (Atomic.get compiles);
  let count s = Array.to_list statuses |> List.filter (( = ) s) |> List.length in
  Alcotest.(check int) "exactly one miss" 1 (count `Miss);
  Alcotest.(check int) "everyone else joined or hit" 3
    (count `Joined + count `Hit);
  let s = Serve.Cache.stats cache in
  Alcotest.(check int) "stats agree" 1 s.Serve.Cache.misses

(* --- device failures and the compile cache ----------------------------- *)

let test_cache_survives_device_failure () =
  (* a device fault is not a compile failure: the cached artifact must
     survive the failing request — its own relaunches reuse it (cache
     status "hit", no recompile), and so does a later request for the
     same kernel.  Distinct from a compile Error, which is never
     cached. *)
  let reports, m =
    with_env "OMPSIMD_FAULTS" "abort=1" (fun () ->
        with_env "OMPSIMD_FAULT_SEED" "5" (fun () ->
            Scheduler.run
              (conf ~retries:2 ~breaker:0 ~backoff:100.0 ())
              (* enough work that the victim thread reaches its trigger *)
              [
                spec ~at:0.0 ~size:2048 ~teams:2 ~threads:64 0;
                spec ~at:500000.0 ~size:2048 ~teams:2 ~threads:64 1;
              ]))
  in
  let r0 = List.nth reports 0 and r1 = List.nth reports 1 in
  Alcotest.check outcome "always-fatal plan degrades" Scheduler.Degraded
    r0.Scheduler.outcome;
  Alcotest.(check int) "three launches for request 0" 3 r0.Scheduler.launches;
  Alcotest.(check string) "the relaunches reuse the cached compile" "hit"
    (Scheduler.cache_status_to_string r0.Scheduler.cache);
  Alcotest.(check string) "a later request still hits the entry" "hit"
    (Scheduler.cache_status_to_string r1.Scheduler.cache);
  Alcotest.(check int) "device failures never evict" 0 m.Metrics.cache_evictions;
  Alcotest.(check int) "all six launches failed" 6 m.Metrics.device_failures

(* --- trace parsing ---------------------------------------------------- *)

let test_parse_trace () =
  let specs =
    Request.parse_trace
      "# comment\n\
       kernel=rowsum at=10 size=24 teams=2 threads=64 simdlen=4 prio=3 seed=9\n\
       \n\
       kernel=chain deadline=500\n"
  in
  Alcotest.(check int) "two requests" 2 (List.length specs);
  let s0 = List.nth specs 0 and s1 = List.nth specs 1 in
  Alcotest.(check string) "kernel" "rowsum" s0.Request.kernel;
  Alcotest.(check (float 0.0)) "arrival" 10.0 s0.Request.at;
  Alcotest.(check int) "size" 24 s0.Request.size;
  Alcotest.(check int) "priority" 3 s0.Request.priority;
  Alcotest.(check (option (float 0.0))) "deadline is absolute" (Some 500.0)
    s1.Request.deadline;
  (match Request.parse_trace "at=3" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "missing kernel= must be rejected");
  Alcotest.(check int) "synthetic honors n" 12
    (List.length (Request.synthetic ~n:12 ~seed:5 ()))

(* --- determinism ------------------------------------------------------ *)

let test_deterministic_replay () =
  (* one trace, four engine x pool combinations: the full snapshot
     (per-request reports incl. checksums, metrics) must be
     byte-identical *)
  let specs = Request.synthetic ~n:16 ~seed:11 () in
  let c = conf ~servers:2 ~queue_bound:2 ~retries:2 ~backoff:800.0 () in
  let snap ?pool () =
    let reports, m = Scheduler.run c ?pool specs in
    Scheduler.snapshot_json c reports m
  in
  let pool = Gpusim.Pool.create ~domains:3 () in
  let staged_seq = snap () in
  let staged_pool = snap ~pool () in
  let walk_seq = with_env "OMPSIMD_EVAL" "walk" (fun () -> snap ()) in
  let walk_pool = with_env "OMPSIMD_EVAL" "walk" (fun () -> snap ~pool ()) in
  Alcotest.(check string) "pool matches sequential" staged_seq staged_pool;
  Alcotest.(check string) "walk engine matches staged" staged_seq walk_seq;
  Alcotest.(check string) "walk + pool matches too" staged_seq walk_pool

(* --- the fleet --------------------------------------------------------- *)

let fconf ?(shards = 2) ?(batch = 4) ?(steal = true) ?(memo = true)
    ?(tenants = []) ?(devices = []) ?(affinity = true) ?(queue_bound = 4)
    ?(servers = 1) ?(cache = 8) ?(retries = 0) ?(backoff = 500.0)
    ?(breaker = 4) ?slo ?window ?(telemetry = false) ?(shed = true)
    ?(autoscale = Serve.Autoscale.disabled) ?(decay = 0) () =
  {
    Fleet.base =
      conf ~queue_bound ~servers ~cache ~retries ~backoff ~breaker ?slo ?window
        ();
    shards;
    batch;
    steal;
    memo;
    tenants;
    devices;
    affinity;
    telemetry;
    shed;
    autoscale;
    decay;
  }

let with_env2 bindings f =
  List.fold_right (fun (k, v) acc () -> with_env k v acc) bindings f ()

let f_outcome (res : Fleet.result) id =
  (List.nth res.Fleet.reports id).Fleet.outcome

let test_tenant_parsing () =
  Alcotest.(check (list (pair string int)))
    "weights and bare names"
    [ ("alice", 3); ("bob", 1) ]
    (Fleet.parse_tenants "alice=3, bob");
  (match Fleet.parse_tenants "alice=zero" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "malformed weight must be rejected");
  let c = fconf ~tenants:[ ("alice", 3) ] () in
  Alcotest.(check int) "configured weight" 3 (Fleet.weight_of c "alice");
  Alcotest.(check int) "unknown tenants weigh 1" 1 (Fleet.weight_of c "bob");
  let specs = Request.parse_trace "kernel=saxpy tenant=alice\nkernel=rowsum\n" in
  Alcotest.(check string) "trace tenant token" "alice"
    (List.nth specs 0).Request.tenant;
  Alcotest.(check string) "default tenant" "-" (List.nth specs 1).Request.tenant

let test_placement_stability () =
  (* the ring is deterministic, and growing it moves only the keys that
     hash next to the new shard's points — nowhere near a full reshuffle *)
  let keys = List.init 200 (Printf.sprintf "content-key-%d") in
  let r4 = Fleet.make_ring 4 and r5 = Fleet.make_ring 5 in
  List.iter
    (fun k ->
      Alcotest.(check int)
        "placement is a pure function of the key" (Fleet.place r4 k)
        (Fleet.place (Fleet.make_ring 4) k))
    (List.filteri (fun i _ -> i < 10) keys);
  let moved =
    List.length (List.filter (fun k -> Fleet.place r4 k <> Fleet.place r5 k) keys)
  in
  Alcotest.(check bool) "a fifth shard takes some keys" true (moved > 0);
  Alcotest.(check bool)
    (Printf.sprintf "but only its share (%d/200 moved)" moved)
    true
    (moved < 100)

let test_fleet_batching () =
  (* one shard, one server, five same-content arrivals: the first
     dispatches solo, the rest wait out its service time and ride one
     merged grid — and every member's report is its own *)
  let specs = List.init 5 (fun i -> spec ~at:(float_of_int i) ~seed:3 i) in
  let res =
    Fleet.run (fconf ~shards:1 ~batch:4 ~queue_bound:8 ~memo:false ()) specs
  in
  Alcotest.(check int) "all completed" 5 res.Fleet.metrics.Metrics.completed;
  Alcotest.(check int) "one merged grid" 1 res.Fleet.fleet.Fleet.batches;
  Alcotest.(check int) "four members rode it" 4
    res.Fleet.fleet.Fleet.batched_requests;
  let r4 = List.nth res.Fleet.reports 4 in
  Alcotest.(check int) "a member knows its batch" 4 r4.Fleet.batched;
  Alcotest.(check bool) "identical content, identical checksum" true
    (List.for_all
       (fun (r : Fleet.rq_report) ->
         r.Fleet.checksum = (List.hd res.Fleet.reports).Fleet.checksum)
       res.Fleet.reports);
  let solo =
    Fleet.run (fconf ~shards:1 ~batch:1 ~queue_bound:8 ~memo:false ()) specs
  in
  Alcotest.(check int) "batch=1 never merges" 0 solo.Fleet.fleet.Fleet.batches;
  Alcotest.(check bool) "batching finishes the backlog sooner" true
    (res.Fleet.metrics.Metrics.makespan < solo.Fleet.metrics.Metrics.makespan)

let test_work_stealing () =
  (* identical content places everything on one home shard; with
     stealing the idle neighbours drain its backlog *)
  let specs = List.init 8 (fun i -> spec ~at:(float_of_int i *. 2.0) ~seed:5 i) in
  let run steal =
    Fleet.run
      (fconf ~shards:4 ~batch:1 ~steal ~queue_bound:16 ~memo:false ())
      specs
  in
  let stolen = run true and home_only = run false in
  Alcotest.(check int) "everything completes either way" 8
    stolen.Fleet.metrics.Metrics.completed;
  Alcotest.(check bool) "idle shards stole" true
    (stolen.Fleet.fleet.Fleet.steals > 0);
  Alcotest.(check int) "stealing off means zero steals" 0
    home_only.Fleet.fleet.Fleet.steals;
  Alcotest.(check bool) "stealing shortens the backlog" true
    (stolen.Fleet.metrics.Metrics.makespan
    < home_only.Fleet.metrics.Metrics.makespan);
  Alcotest.(check bool) "stolen requests are marked" true
    (List.exists (fun (r : Fleet.rq_report) -> r.Fleet.stolen)
       stolen.Fleet.reports)

let test_fair_admission () =
  (* a hog fills the only queue; a light newcomer takes the hog's
     newest slot (the evictee is turned away — retries 0), unless the
     hog's configured weight says it deserves the queue *)
  let specs =
    List.init 4 (fun i -> spec ~at:(float_of_int i) ~tenant:"hog" ~seed:2 i)
    @ [ spec ~at:4.0 ~tenant:"light" ~seed:2 4 ]
  in
  let run tenants =
    Fleet.run
      (fconf ~shards:1 ~batch:1 ~queue_bound:3 ~retries:0 ~tenants ()) specs
  in
  let fair = run [] in
  Alcotest.check outcome "the hog's newest request lost its slot"
    Scheduler.Rejected (f_outcome fair 3);
  Alcotest.check outcome "the light tenant kept its seat" Scheduler.Completed
    (f_outcome fair 4);
  Alcotest.(check int) "the eviction is counted" 1
    fair.Fleet.fleet.Fleet.tenant_evictions;
  let hog_stats =
    List.find
      (fun (t : Metrics.tenant_stats) -> t.Metrics.tenant = "hog")
      fair.Fleet.tenant_stats
  in
  Alcotest.(check int) "and billed to the hog" 1 hog_stats.Metrics.t_evicted;
  (* weight 3 entitles the hog to its three slots: same arithmetic now
     turns the newcomer away instead *)
  let weighted = run [ ("hog", 3) ] in
  Alcotest.check outcome "a weighted hog keeps its queue" Scheduler.Completed
    (f_outcome weighted 3);
  Alcotest.check outcome "and the newcomer is the one rejected"
    Scheduler.Rejected (f_outcome weighted 4);
  Alcotest.(check int) "no eviction happened" 0
    weighted.Fleet.fleet.Fleet.tenant_evictions

let test_traffic_determinism () =
  let p = Traffic.preset "mixed" ~n:50 ~seed:9 in
  let a = Traffic.generate p and b = Traffic.generate p in
  Alcotest.(check bool) "same profile, same trace" true (a = b);
  Alcotest.(check int) "n honored" 50 (List.length a);
  Alcotest.(check bool) "ids are the trace order" true
    (List.for_all2 (fun (s : Request.spec) i -> s.Request.id = i) a
       (List.init 50 Fun.id));
  Alcotest.(check bool) "arrivals are monotone" true
    (fst
       (List.fold_left
          (fun (ok, prev) (s : Request.spec) -> (ok && s.Request.at >= prev, s.Request.at))
          (true, 0.0) a));
  Alcotest.(check bool) "tenants are drawn from the pool" true
    (List.for_all (fun (s : Request.spec) -> List.mem s.Request.tenant p.Traffic.tenants) a);
  match Traffic.preset "nope" ~n:1 ~seed:1 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown profile must be rejected"

(* qcheck: whatever the shard count, batch limit, steal setting and
   (sometimes) an armed chaos plan do to the schedule, the fleet loses
   nothing: every request id gets exactly one terminal report and the
   outcome tally adds back up to the trace length. *)
let fleet_no_lost_request =
  QCheck.Test.make ~count:8 ~name:"fleet loses no request"
    QCheck.(triple (int_range 1 5) (oneofl [ 1; 4; 8 ]) small_nat)
    (fun (shards, batch, seed) ->
      let profile =
        List.nth Traffic.preset_names (seed mod List.length Traffic.preset_names)
      in
      let specs = Traffic.(generate (preset profile ~n:25 ~seed)) in
      let env =
        if seed mod 2 = 0 then
          [
            ("OMPSIMD_FAULTS", "abort=0.25,flip=0.2:0.5");
            ("OMPSIMD_FAULT_SEED", string_of_int (seed + 1));
          ]
        else []
      in
      with_env2 env (fun () ->
          let res =
            Fleet.run
              (fconf ~shards ~batch ~steal:(seed mod 3 <> 0) ~retries:2
                 ~queue_bound:4 ~servers:2 ())
              specs
          in
          let m = res.Fleet.metrics in
          List.length res.Fleet.reports = 25
          && List.for_all2
               (fun (r : Fleet.rq_report) i -> r.Fleet.spec.Request.id = i)
               res.Fleet.reports (List.init 25 Fun.id)
          && m.Metrics.completed + m.Metrics.rejected + m.Metrics.shed
             + m.Metrics.timed_out + m.Metrics.failed + m.Metrics.degraded
             = 25))

(* qcheck: the determinism contract, fleet edition.  The full snapshot
   is byte-identical across evaluation engines and pool widths; the
   per-request results are additionally byte-identical across shard
   counts and batch limits on an admission-lossless config (roomy
   queue, deadline-free profile) — even with a chaos plan armed, since
   fault identity is pinned per (request, attempt). *)
let fleet_replay_invariance =
  QCheck.Test.make ~count:4 ~name:"fleet replay invariance"
    QCheck.(pair small_nat bool)
    (fun (seed, armed) ->
      let profile = if seed mod 2 = 0 then "flash" else "bursty" in
      let specs = Traffic.(generate (preset profile ~n:20 ~seed)) in
      let env =
        if armed then
          [
            ("OMPSIMD_FAULTS", "abort=0.3,flip=0.2:0.5");
            ("OMPSIMD_FAULT_SEED", string_of_int (seed + 2));
          ]
        else []
      in
      with_env2 env (fun () ->
          let c = fconf ~shards:2 ~batch:4 ~queue_bound:10_000 ~retries:2
                    ~breaker:0 ~servers:2 ()
          in
          let snap ?pool engine =
            with_env "OMPSIMD_EVAL" engine (fun () ->
                Fleet.snapshot_json c (Fleet.run c ?pool specs))
          in
          let pool = Gpusim.Pool.create ~domains:3 () in
          let reference = snap "" in
          let results (shards, batch) =
            Fleet.results_json
              (Fleet.run { c with Fleet.shards; batch } specs).Fleet.reports
          in
          let r11 = results (1, 1) in
          String.equal reference (snap ~pool "")
          && String.equal reference (snap "walk")
          && String.equal reference (snap ~pool "walk")
          && String.equal r11 (results (3, 8))
          && String.equal r11 (results (4, 1))))

(* qcheck: launch batching is semantically invisible.  The same trace
   through one shard with batching on and off yields, per request,
   the same outcome, launch count, execution cycles, checksum bits and
   bit-identical device counters — including under an armed fault
   plan, where the pinned nonce keeps each member's faults its own.
   The memo is off so every report comes from a real launch, and the
   breaker is off because failure ordering differs between merged and
   solo schedules. *)
let fleet_batching_equivalence =
  QCheck.Test.make ~count:6 ~name:"fleet batching equivalence"
    QCheck.(triple (int_range 2 8) small_nat bool)
    (fun (batch, seed, armed) ->
      let specs =
        List.init 12 (fun i ->
            spec
              ~at:(float_of_int (i / 4) *. 100.0)
              ~kernel:(if i mod 2 = 0 then "saxpy" else "rowsum")
              ~size:256 ~teams:2
              ~seed:(1 + (i mod 3))
              i)
      in
      let env =
        if armed then
          [
            ("OMPSIMD_FAULTS", "abort=0.6,flip=0.3:0.5");
            ("OMPSIMD_FAULT_SEED", string_of_int (seed + 3));
          ]
        else []
      in
      with_env2 env (fun () ->
          let run batch =
            (Fleet.run
               (fconf ~shards:1 ~batch ~memo:false ~breaker:0 ~retries:2
                  ~queue_bound:10_000 ~servers:2 ())
               specs)
              .Fleet.reports
          in
          let batched = run batch and solo = run 1 in
          List.exists (fun (r : Fleet.rq_report) -> r.Fleet.batched >= 2) batched
          && List.for_all2
               (fun (a : Fleet.rq_report) (b : Fleet.rq_report) ->
                 a.Fleet.outcome = b.Fleet.outcome
                 && a.Fleet.launches = b.Fleet.launches
                 && a.Fleet.exec_ticks = b.Fleet.exec_ticks
                 && Int64.bits_of_float a.Fleet.checksum
                    = Int64.bits_of_float b.Fleet.checksum
                 && Gpusim.Counters.equal a.Fleet.counters b.Fleet.counters)
               batched solo))

(* --- heterogeneous fleets ------------------------------------------- *)

let test_parse_devices () =
  (match Fleet.parse_devices "w32-hw, w64-sw" with
  | [ a; b ] ->
      Alcotest.(check string) "first" "w32-hw" a.Gpusim.Config.name;
      Alcotest.(check string) "second" "w64-sw" b.Gpusim.Config.name
  | _ -> Alcotest.fail "expected two devices");
  match Fleet.parse_devices "w32-hw,nope" with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the device" true
        (Astring_like.contains msg "nope")
  | _ -> Alcotest.fail "unknown device accepted"

(* A [device=] pin routes to the pinned device's shard when some shard
   carries it AND the request geometry fits it; otherwise the pin is
   ignored and the request replays as if unpinned. *)
let test_device_pin () =
  let devices = Fleet.parse_devices "w32-hw,w64-sw" in
  let mk ?device ?(threads = 32) id =
    spec
      ~at:(float_of_int id *. 100_000.0)
      ~kernel:"saxpy" ~size:64 ~teams:1 ~threads ?device id
  in
  let specs =
    [
      mk ~device:"w64-sw" ~threads:64 0 (* honored *);
      mk ~device:"w64-sw" ~threads:32 1 (* 32 does not fit a 64-warp *);
      mk ~device:"a100q" 2 (* no shard carries it *);
    ]
  in
  let res =
    Fleet.run
      (fconf ~shards:2 ~batch:1 ~steal:false ~memo:false ~devices
         ~queue_bound:100 ~servers:1 ())
      specs
  in
  let r id =
    List.find
      (fun (r : Fleet.rq_report) -> r.Fleet.spec.Request.id = id)
      res.Fleet.reports
  in
  List.iter
    (fun id ->
      Alcotest.check outcome
        (Printf.sprintf "request %d completes" id)
        Scheduler.Completed (r id).Fleet.outcome)
    [ 0; 1; 2 ];
  Alcotest.(check int) "pin lands on the w64 shard" 1 (r 0).Fleet.shard;
  Alcotest.(check int) "unfittable pin stays on w32" 0 (r 1).Fleet.shard;
  Alcotest.(check int) "uncarried pin stays on w32" 0 (r 2).Fleet.shard

(* Directed affinity migration: repeated same-content traffic on a
   two-device fleet first explores (an unmeasured device costs 0, so
   both get a launch), then every later arrival concentrates on the
   device with the lowest observed member cycles.  The trace is spaced
   so each request finishes before the next places. *)
let test_affinity_migration () =
  let devices = Fleet.parse_devices "w32-hw,w32-sw" in
  let specs =
    List.init 10 (fun i ->
        spec
          ~at:(float_of_int i *. 100_000.0)
          ~kernel:"rowsum" ~size:256 ~teams:2 ~seed:(i + 1) i)
  in
  let res =
    Fleet.run
      (fconf ~shards:2 ~batch:1 ~steal:false ~memo:false ~devices
         ~queue_bound:100 ~servers:1 ())
      specs
  in
  let reports = res.Fleet.reports in
  Alcotest.(check int)
    "all completed" 10
    (List.length
       (List.filter
          (fun (r : Fleet.rq_report) -> r.Fleet.outcome = Scheduler.Completed)
          reports));
  let late = List.filteri (fun i _ -> i >= 2) reports in
  let late_shards =
    List.sort_uniq compare
      (List.map (fun (r : Fleet.rq_report) -> r.Fleet.shard) late)
  in
  Alcotest.(check int) "hot content concentrates on one device" 1
    (List.length late_shards);
  Alcotest.(check bool) "affinity moved someone off the plain ring" true
    (res.Fleet.fleet.Fleet.affinity_moves > 0)

(* qcheck: shuffling the device multiset over shard ids changes which
   sid hosts which architecture, but not what any request experiences —
   placement, stealing and affinity all key on device names, so
   [results_json] is byte-identical and no request is lost. *)
let fleet_device_shuffle =
  QCheck.Test.make ~count:4 ~name:"fleet device shuffle invariance"
    QCheck.(pair small_nat (int_range 1 3))
    (fun (seed, rot) ->
      let specs = Traffic.(generate (preset "flash" ~n:20 ~seed)) in
      let devices = Fleet.parse_devices "w32-hw,w64-hw,w16-sw,w32-l2tiny" in
      let n = List.length devices in
      let rotated = List.init n (fun i -> List.nth devices ((i + rot) mod n)) in
      let run devices =
        Fleet.run
          (fconf ~shards:4 ~batch:4 ~devices ~queue_bound:10_000 ~retries:2
             ~breaker:0 ~servers:2 ~decay:(seed mod 3) ())
          specs
      in
      let a = run devices and b = run rotated in
      let m = a.Fleet.metrics in
      String.equal
        (Fleet.results_json a.Fleet.reports)
        (Fleet.results_json b.Fleet.reports)
      && m.Metrics.completed + m.Metrics.rejected + m.Metrics.shed
         + m.Metrics.timed_out + m.Metrics.failed + m.Metrics.degraded
         = 20)

(* Affinity decay for nonstationary traffic: an all-time cost table
   remembers forever — its second request explores the still-unmeasured
   device (an absent entry costs 0, undercutting any measurement), and
   later arrivals concentrate on whichever measured cheapest.  Arrivals
   10 windows apart under a one-window horizon expire every measurement
   before the next request places, so every placement repeats the
   fresh-table decision; a horizon covering the whole trace replays the
   all-time schedule byte-for-byte. *)
let test_affinity_decay () =
  let devices = Fleet.parse_devices "w32-hw,w32-sw" in
  let specs =
    List.init 10 (fun i ->
        spec
          ~at:(float_of_int i *. 100_000.0)
          ~kernel:"rowsum" ~size:256 ~teams:2 ~seed:(i + 1) i)
  in
  let run decay =
    Fleet.run
      (fconf ~shards:2 ~batch:1 ~steal:false ~memo:false ~devices
         ~queue_bound:100 ~servers:1 ~window:10_000.0 ~decay ())
      specs
  in
  let shard_of (res : Fleet.result) id =
    (List.nth res.Fleet.reports id).Fleet.shard
  in
  let sticky = run 0 in
  let first = shard_of sticky 0 in
  Alcotest.(check bool) "all-time table explores the unmeasured device" true
    (shard_of sticky 1 <> first);
  let expired = run 1 in
  List.iteri
    (fun i _ ->
      Alcotest.(check int)
        (Printf.sprintf "expired table repeats the fresh decision for %d" i)
        first (shard_of expired i))
    specs;
  let covered = run 100 in
  Alcotest.(check string) "a covering horizon replays the all-time placement"
    (Fleet.results_json sticky.Fleet.reports)
    (Fleet.results_json covered.Fleet.reports)

(* --- long-run operability: telemetry, SLO admission, autoscaling ----- *)

let operability_autoscale =
  {
    Serve.Autoscale.enabled = true;
    slo = 8_000.0;
    budget = 8;
    max_extra = 6;
    down = 0.5;
    cooldown = 2;
  }

(* The snapshot carries the operability surface: per-shard breaker /
   retry / relaunch / concurrency state and the SLO + autoscale
   sections — and stays byte-identical across engines and pool widths
   with all of it armed. *)
let test_operability_snapshot () =
  let specs = Traffic.(generate (preset "flash" ~n:30 ~seed:11)) in
  let c =
    fconf ~shards:2 ~batch:4 ~queue_bound:16 ~servers:2 ~retries:1
      ~slo:8_000.0 ~telemetry:true ~autoscale:operability_autoscale ()
  in
  let snap ?pool () = Fleet.snapshot_json c (Fleet.run c ?pool specs) in
  let reference = snap () in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " in snapshot") true
        (Astring_like.contains reference key))
    [
      "\"breakers_open\"";
      "\"retries\"";
      "\"relaunches\"";
      "\"conc\"";
      "\"shed_slo\"";
      "\"slo\"";
      "\"autoscale\"";
      "\"budget\"";
      "\"window\"";
      "\"shed\"";
    ];
  let pool = Gpusim.Pool.create ~domains:3 () in
  Alcotest.(check string) "pooled replay identical" reference (snap ~pool ());
  let walk = with_env "OMPSIMD_EVAL" "walk" (fun () -> snap ()) in
  Alcotest.(check string) "walk engine identical" reference walk

(* qcheck: the telemetry JSONL is part of the determinism contract —
   byte-identical across evaluation engines, pool widths and device
   shuffles (windows key on member labels, never shard ids). *)
let fleet_telemetry_replay =
  QCheck.Test.make ~count:4 ~name:"fleet telemetry byte replay"
    QCheck.(pair small_nat (int_range 1 3))
    (fun (seed, rot) ->
      let specs = Traffic.(generate (preset "flash" ~n:25 ~seed)) in
      let devices = Fleet.parse_devices "w32-hw,w64-hw,w16-sw,w32-l2tiny" in
      let n = List.length devices in
      let rotated = List.init n (fun i -> List.nth devices ((i + rot) mod n)) in
      let c devices =
        fconf ~shards:4 ~batch:4 ~devices ~queue_bound:16 ~retries:2
          ~servers:2 ~slo:8_000.0 ~telemetry:true
          ~autoscale:operability_autoscale ()
      in
      let tele ?pool conf = (Fleet.run conf ?pool specs).Fleet.telemetry in
      let reference = tele (c devices) in
      let pool = Gpusim.Pool.create ~domains:3 () in
      String.length reference > 0
      && String.equal reference (tele ~pool (c devices))
      && with_env "OMPSIMD_EVAL" "walk" (fun () ->
             String.equal reference (tele (c devices)))
      && String.equal reference (tele (c rotated)))

(* The autoscaler control law, exercised directly: the dead band keeps
   a square-wave load from oscillating the target, sustained overload
   grows on the cooldown grid up to the per-shard cap and the pooled
   budget, and recovery returns every token. *)
let test_autoscale_hysteresis () =
  let aconf =
    {
      Serve.Autoscale.enabled = true;
      slo = 1_000.0;
      budget = 4;
      max_extra = 2;
      down = 0.5;
      cooldown = 2;
    }
  in
  let order = [| 0; 1 |] in
  let stat p99 conc = { Serve.Autoscale.p99; queued = 0; conc } in
  let t = Serve.Autoscale.create aconf ~shards:2 in
  let acts = ref 0 in
  for w = 0 to 19 do
    let p99 = if w mod 2 = 0 then 990.0 else 510.0 in
    acts :=
      !acts
      + List.length
          (Serve.Autoscale.step t ~window:w ~order
             ~stats:[| stat p99 2; stat p99 2 |])
  done;
  Alcotest.(check int) "dead band holds a square wave still" 0 !acts;
  let t = Serve.Autoscale.create aconf ~shards:2 in
  let grown = ref [] in
  for w = 0 to 9 do
    List.iter
      (fun (a : Serve.Autoscale.action) ->
        if a.Serve.Autoscale.a_verdict = Serve.Autoscale.Grow
           && a.Serve.Autoscale.a_shard = 0
        then grown := w :: !grown)
      (Serve.Autoscale.step t ~window:w ~order
         ~stats:[| stat 2_000.0 2; stat 2_000.0 2 |])
  done;
  (match List.rev !grown with
  | [] -> Alcotest.fail "never grew under sustained overload"
  | w0 :: rest ->
      Alcotest.(check bool) "cooldown spaces the grows" true
        (fst
           (List.fold_left
              (fun (ok, prev) w ->
                (ok && w - prev >= aconf.Serve.Autoscale.cooldown, w))
              (true, w0) rest)));
  Alcotest.(check int) "per-shard growth capped at max_extra"
    aconf.Serve.Autoscale.max_extra (List.length !grown);
  Alcotest.(check int) "the pool is exhausted, never overdrawn" 0
    (Serve.Autoscale.pool_left t);
  Alcotest.(check int) "the other contender got its share" 2
    (Serve.Autoscale.extra t 1);
  let shrunk = ref 0 in
  for w = 10 to 25 do
    shrunk :=
      !shrunk
      + List.length
          (Serve.Autoscale.step t ~window:w ~order
             ~stats:[| stat 100.0 4; stat 100.0 4 |])
  done;
  Alcotest.(check int) "recovery returns every token"
    aconf.Serve.Autoscale.budget !shrunk;
  Alcotest.(check int) "pool refilled" aconf.Serve.Autoscale.budget
    (Serve.Autoscale.pool_left t);
  let d = Serve.Autoscale.create Serve.Autoscale.disabled ~shards:2 in
  Alcotest.(check int) "disabled never acts" 0
    (List.length
       (Serve.Autoscale.step d ~window:0 ~order
          ~stats:[| stat 5_000.0 1; stat 5_000.0 1 |]));
  Alcotest.(check bool) "no SLO means no autoscaler" false
    (Serve.Autoscale.config_of_env ~slo:None ~shards:4 ~servers:2 ())
      .Serve.Autoscale.enabled

let test_priority_order () =
  (* three queued requests drain highest-priority-first *)
  let reports, _ =
    Scheduler.run (conf ())
      [
        spec ~at:0.0 0;
        spec ~at:1.0 ~priority:0 1;
        spec ~at:2.0 ~priority:5 2;
      ]
  in
  let r1 = List.nth reports 1 and r2 = List.nth reports 2 in
  Alcotest.(check bool) "high priority dispatches first" true
    (r2.Scheduler.start < r1.Scheduler.start)

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "admission: rejected without retries" `Quick
          test_admission_rejection;
        Alcotest.test_case "admission: retry-with-backoff succeeds" `Quick
          test_retry_success;
        Alcotest.test_case "admission: shed after retry budget" `Quick
          test_shed_after_retries;
        Alcotest.test_case "deadline: expires while queued" `Quick
          test_deadline_expires_queued;
        Alcotest.test_case "deadline: late finish is timed out" `Quick
          test_deadline_late_finish;
        Alcotest.test_case "cache: hit and virtual single-flight join" `Quick
          test_cache_hit_and_virtual_join;
        Alcotest.test_case "cache: LRU eviction at capacity" `Quick
          test_cache_lru_eviction;
        Alcotest.test_case "cache: capacity 0 disables" `Quick
          test_cache_disabled;
        Alcotest.test_case "cache: host single-flight across domains" `Quick
          test_host_single_flight;
        Alcotest.test_case "cache: entry survives device failures" `Quick
          test_cache_survives_device_failure;
        Alcotest.test_case "trace parsing and synthesis" `Quick
          test_parse_trace;
        Alcotest.test_case "replay is engine- and pool-invariant" `Quick
          test_deterministic_replay;
        Alcotest.test_case "dispatch is highest-priority-first" `Quick
          test_priority_order;
        Alcotest.test_case "fleet: tenant parsing and weights" `Quick
          test_tenant_parsing;
        Alcotest.test_case "fleet: consistent-hash placement stability" `Quick
          test_placement_stability;
        Alcotest.test_case "fleet: launch batching merges the backlog" `Quick
          test_fleet_batching;
        Alcotest.test_case "fleet: idle shards steal work" `Quick
          test_work_stealing;
        Alcotest.test_case "fleet: weighted-fair admission evicts the hog"
          `Quick test_fair_admission;
        Alcotest.test_case "fleet: traffic generator is deterministic" `Quick
          test_traffic_determinism;
        QCheck_alcotest.to_alcotest fleet_no_lost_request;
        QCheck_alcotest.to_alcotest fleet_replay_invariance;
        QCheck_alcotest.to_alcotest fleet_batching_equivalence;
        Alcotest.test_case "fleet: parse_devices" `Quick test_parse_devices;
        Alcotest.test_case "fleet: device pin routes to its group" `Quick
          test_device_pin;
        Alcotest.test_case "fleet: affinity concentrates hot content" `Quick
          test_affinity_migration;
        QCheck_alcotest.to_alcotest fleet_device_shuffle;
        Alcotest.test_case "fleet: affinity decay forgets stale costs" `Quick
          test_affinity_decay;
        Alcotest.test_case "fleet: operability snapshot shape and replay"
          `Quick test_operability_snapshot;
        QCheck_alcotest.to_alcotest fleet_telemetry_replay;
        Alcotest.test_case "autoscale: hysteresis, cooldown and budget" `Quick
          test_autoscale_hysteresis;
      ] );
  ]
