(* Certification of the optimization pipeline (Passes): every pass is
   differentially tested — the transformed kernel must be well-formed
   (run_verified), produce the same memory as the untransformed one on
   the device (bitwise for plain stores, tolerant for atomic arrays),
   agree bit-exactly between the two engines on the transformed kernel,
   and never introduce a static may-race finding.  Known-answer tests pin
   the shapes the transforms produce via the printer; parser tests pin
   the OMPSIMD_PASSES fail-fast behaviour; cache-key tests pin that
   differently-optimized variants can never alias in the serve cache. *)

module Ir = Ompir.Ir
module Eval = Ompir.Eval
module Passes = Ompir.Passes
module Outline = Ompir.Outline
module Memory = Gpusim.Memory
module D = Test_differential

let cfg = Gpusim.Config.small

let errs es =
  String.concat "; "
    (List.map (fun (e : Ompir.Check.error) -> e.Ompir.Check.what) es)

(* --- the per-pass differential property --------------------------------- *)

let fingerprints k =
  List.map Ompir.Racecheck.finding_to_string (Ompir.Racecheck.check_kernel k)

(* Apply one pass and certify it end to end against the original. *)
let certify ?pool ~name ~options ~bindings_of ~arrays ~atomic pass k =
  match Passes.run_verified [ pass ] k with
  | Error (p, es) ->
      QCheck.Test.fail_reportf "pass %s broke well-formedness: %s" p (errs es)
  | Ok k' ->
      let before = fingerprints k in
      List.iter
        (fun s ->
          if not (List.mem s before) then
            QCheck.Test.fail_reportf "pass %s introduced may-race finding: %s"
              name s)
        (fingerprints k');
      if k' = k then true
      else begin
        let prog = Outline.run k and prog' = Outline.run k' in
        let _, b = bindings_of () in
        let _, b' = bindings_of () in
        let (_ : Gpusim.Device.report) =
          Eval.run ~cfg ?pool ~options ~bindings:b prog
        in
        let (_ : Gpusim.Device.report) =
          Eval.run ~cfg ?pool ~options ~bindings:b' prog'
        in
        List.iter
          (fun a ->
            let same =
              match pool with
              | None -> D.array_of b a = D.array_of b' a
              | Some _ -> D.close (D.array_of b a) (D.array_of b' a)
            in
            if not same then
              QCheck.Test.fail_reportf "pass %s changed %s[]" name a)
          arrays;
        List.iter
          (fun a ->
            if not (D.close (D.array_of b a) (D.array_of b' a)) then
              QCheck.Test.fail_reportf "pass %s drifted atomic %s[]" name a)
          atomic;
        (* both engines, same counters and simulated time, host agrees —
           on the TRANSFORMED kernel *)
        D.engines_agree ~name ?pool ~options ~bindings_of ~out_arrays:arrays
          ~atomic_arrays:atomic ~kernel:k' prog'
      end

(* Random well-formed parallel kernels (the differential generator),
   forced to `Auto so every case is sound without guardize. *)
let on_random ?pool pass case =
  let options =
    { (D.options_of case) with Eval.parallel_mode = `Auto }
  in
  certify ?pool ~name:pass.Passes.name ~options
    ~bindings_of:(fun () -> D.make_bindings case)
    ~arrays:[ "out"; "marks"; "red" ]
    ~atomic:[ "acc_arr" ] pass case.D.kernel

let on_collapse pass cc =
  certify ~name:pass.Passes.name ~options:(D.collapse_options cc)
    ~bindings_of:(fun () -> D.collapse_bindings cc)
    ~arrays:[ "out"; "red" ] ~atomic:[] pass (D.collapse_kernel cc)

(* --- sequential nest generator ------------------------------------------ *)

(* Dense sequential loop nests: literal bounds, affine row-major stores,
   adjacent same-space loop pairs — the shapes licm, strength reduction,
   interchange, fusion and For-unrolling actually fire on.  Sequential
   kernels are trivially race-free and bitwise deterministic. *)
type seq_case = {
  sk : Ir.kernel;
  sn : int;
  steams : int;
  smode : Omprt.Mode.t;
  sdesc : string;
}

let gen_seq_case st =
  let open QCheck in
  let w = List.nth [ 3; 4; 8 ] (Gen.int_range 0 2 st) in
  let r = Gen.int_range 2 5 st in
  let n = r * w in
  let fexpr vars depth = D.gen_float_expr vars [] depth st in
  let open Ir in
  let has_c = Gen.bool st in
  let perfect = Gen.bool st in
  let nest =
    if perfect then
      For
        {
          var = "i";
          lo = Int_lit 0;
          hi = Int_lit r;
          body =
            [
              For
                {
                  var = "j";
                  lo = Int_lit 0;
                  hi = Int_lit w;
                  body =
                    [
                      Store
                        ( "out",
                          Binop
                            (Add, Binop (Mul, Var "i", Int_lit w), Var "j"),
                          fexpr [ "i"; "j" ] 2 );
                    ];
                };
            ];
        }
    else
      For
        {
          var = "i";
          lo = Int_lit 0;
          hi = Int_lit r;
          body =
            (if has_c then
               [ Decl { name = "c"; ty = Tfloat; init = fexpr [] 2 } ]
             else [])
            @ [
                Decl { name = "d"; ty = Tfloat; init = fexpr [ "i" ] 2 };
                For
                  {
                    var = "j";
                    lo = Int_lit 0;
                    hi = Int_lit w;
                    body =
                      [
                        Store
                          ( "out",
                            Binop
                              (Add, Binop (Mul, Var "i", Int_lit w), Var "j"),
                            Binop
                              ( Add,
                                (if has_c then
                                   Binop (Add, Var "c", Var "d")
                                 else Var "d"),
                                fexpr [ "i"; "j" ] 1 ) );
                      ];
                  };
              ];
        }
  in
  let pair =
    [
      For
        {
          var = "i";
          lo = Int_lit 0;
          hi = Int_lit r;
          body =
            [
              Store
                ( "out2",
                  Binop (Mod, Binop (Mul, Var "i", Int_lit w), Var "n"),
                  fexpr [ "i" ] 2 );
            ];
        };
      For
        {
          var = "i2";
          lo = Int_lit 0;
          hi = Int_lit r;
          body =
            [
              Store
                ( "out3",
                  Binop (Mod, Binop (Mul, Var "i2", Int_lit w), Var "n"),
                  fexpr [ "i2" ] 2 );
            ];
        };
    ]
  in
  let with_pair = Gen.bool st in
  let body = (nest :: []) @ if with_pair then pair else [] in
  let sk =
    kernel ~name:"seqnest"
      ~params:
        [
          { pname = "src"; pty = P_farray };
          { pname = "out"; pty = P_farray };
          { pname = "out2"; pty = P_farray };
          { pname = "out3"; pty = P_farray };
          { pname = "n"; pty = P_int };
        ]
      body
  in
  {
    sk;
    sn = n;
    steams = Gen.int_range 1 2 st;
    smode = (if Gen.bool st then Omprt.Mode.Spmd else Omprt.Mode.Generic);
    sdesc =
      Printf.sprintf "r=%d w=%d perfect=%b c=%b pair=%b" r w perfect has_c
        with_pair;
  }

let seq_bindings sc =
  let space = Memory.space () in
  let g = Ompsimd_util.Prng.create ~seed:(sc.sn + 101) in
  ( space,
    [
      ( "src",
        Eval.B_farr
          (Memory.of_float_array space
             (Array.init sc.sn (fun _ -> Ompsimd_util.Prng.float g 2.0 -. 1.0)))
      );
      ("out", Eval.B_farr (Memory.falloc space sc.sn));
      ("out2", Eval.B_farr (Memory.falloc space sc.sn));
      ("out3", Eval.B_farr (Memory.falloc space sc.sn));
      ("n", Eval.B_int sc.sn);
    ] )

let seq_options sc =
  {
    Eval.num_teams = sc.steams;
    num_threads = 32;
    teams_mode = sc.smode;
    parallel_mode = `Auto;
    simd_len = 1;
    sharing_bytes = 2048;
  }

let print_seq sc =
  Printf.sprintf "%s teams=%d mode=%s\n%s" sc.sdesc sc.steams
    (Omprt.Mode.to_string sc.smode)
    (Ompir.Printer.kernel_to_string sc.sk)

let seq_arbitrary = QCheck.make ~print:print_seq gen_seq_case

let on_seq pass sc =
  (match Ompir.Check.kernel sc.sk with
  | Ok () -> ()
  | Error es ->
      QCheck.Test.fail_reportf "seq generator produced ill-formed kernel: %s"
        (errs es));
  certify ~name:pass.Passes.name ~options:(seq_options sc)
    ~bindings_of:(fun () -> seq_bindings sc)
    ~arrays:[ "out"; "out2"; "out3" ]
    ~atomic:[] pass sc.sk

(* --- the qcheck fleet ---------------------------------------------------- *)

let full_spec = "fold,licm,strength,collapse,interchange,fuse,tile:4,unroll,dce,spmdize"

let qcheck_cases =
  let pool = Gpusim.Pool.create ~domains:3 () in
  let t = QCheck.Test.make in
  [
    t ~name:"pass fold: certified on random kernels" ~count:100 D.case_arbitrary
      (on_random Passes.fold);
    t ~name:"pass dce: certified on random kernels" ~count:100 D.case_arbitrary
      (on_random Passes.dce);
    t ~name:"pass spmdize: certified on random kernels" ~count:100
      D.case_arbitrary
      (on_random Passes.spmdize_upgrade);
    t ~name:"pass unroll: certified on random kernels (simd replication)"
      ~count:100 D.case_arbitrary
      (on_random (Passes.unroll ~max_trip:Passes.warp_width ~simd_trip:8 ()));
    t ~name:"pass unroll: certified on sequential nests" ~count:100
      seq_arbitrary
      (on_seq (Passes.unroll ~max_trip:Passes.warp_width ()));
    t ~name:"pass licm: certified on sequential nests" ~count:100 seq_arbitrary
      (on_seq (Passes.licm ()));
    t ~name:"pass licm: certified on random kernels" ~count:100
      D.case_arbitrary
      (on_random (Passes.licm ()));
    t ~name:"pass strength: certified on sequential nests" ~count:100
      seq_arbitrary
      (on_seq (Passes.strength_reduce ()));
    t ~name:"pass interchange: certified on sequential nests" ~count:100
      seq_arbitrary
      (on_seq (Passes.interchange ()));
    t ~name:"pass fuse: certified on sequential nests" ~count:100 seq_arbitrary
      (on_seq (Passes.fuse ()));
    t ~name:"pass collapse: certified on collapsed kernels" ~count:100
      D.collapse_arbitrary
      (on_collapse (Passes.collapse ()));
    t ~name:"pass tile: certified on random kernels" ~count:100
      D.case_arbitrary
      (on_random (Passes.tile ~width:4 ()));
    t ~name:"pass tile: certified on collapsed kernels" ~count:100
      D.collapse_arbitrary
      (on_collapse (Passes.tile ~width:4 ()));
    t ~name:"full spec pipeline: run_verified Ok on every random kernel"
      ~count:100 D.case_arbitrary
      (fun case ->
        match Passes.run_verified (Passes.pipeline_of_spec full_spec)
                case.D.kernel
        with
        | Ok (_ : Ir.kernel) -> true
        | Error (p, es) ->
            QCheck.Test.fail_reportf "pipeline broke at %s: %s" p (errs es));
    t ~name:"full spec pipeline: certified on pooled domains" ~count:25
      D.case_arbitrary
      (on_random ~pool
         {
           Passes.name = "pipeline";
           transform = Passes.run (Passes.pipeline_of_spec full_spec);
         });
  ]

let qcheck_seed = 0x9a55e5

(* --- known-answer transforms (printer round-trip) ------------------------ *)

let params =
  [
    { Ir.pname = "src"; pty = Ir.P_farray };
    { Ir.pname = "out"; pty = Ir.P_farray };
    { Ir.pname = "n"; pty = Ir.P_int };
  ]

let k body = Ir.kernel ~name:"ka" ~params body

let check_transform what pass input expected () =
  let got = Passes.run [ pass ] input in
  let p = Ompir.Printer.kernel_to_string in
  Alcotest.(check string) what (p expected) (p got)

let ka_licm =
  let open Ir in
  let input =
    k
      [
        For
          {
            var = "i";
            lo = Int_lit 0;
            hi = Int_lit 4;
            body =
              [
                Decl { name = "c"; ty = Tfloat; init = Load ("src", Int_lit 0) };
                Store ("out", Var "i", Var "c");
              ];
          };
      ]
  in
  let expected =
    k
      [
        Decl { name = "c__0"; ty = Tfloat; init = Load ("src", Int_lit 0) };
        For
          {
            var = "i";
            lo = Int_lit 0;
            hi = Int_lit 4;
            body = [ Store ("out", Var "i", Var "c__0") ];
          };
      ]
  in
  check_transform "licm hoists the invariant load" (Passes.licm ()) input
    expected

let ka_strength =
  let open Ir in
  let input =
    k
      [
        For
          {
            var = "i";
            lo = Int_lit 0;
            hi = Var "n";
            body =
              [
                Store
                  ( "out",
                    Binop (Mod, Binop (Mul, Var "i", Int_lit 4), Var "n"),
                    Float_lit 1.0 );
              ];
          };
      ]
  in
  let expected =
    k
      [
        Decl { name = "i_sr"; ty = Tint; init = Int_lit 0 };
        For
          {
            var = "i";
            lo = Int_lit 0;
            hi = Var "n";
            body =
              [
                Store
                  ("out", Binop (Mod, Var "i_sr", Var "n"), Float_lit 1.0);
                Assign ("i_sr", Binop (Add, Var "i_sr", Int_lit 4));
              ];
          };
      ]
  in
  check_transform "strength reduction rewrites i*4 into a recurrence"
    (Passes.strength_reduce ()) input expected

let ka_collapse =
  let open Ir in
  let rest =
    [
      Store
        ( "out",
          Binop (Add, Binop (Mul, Var "a", Int_lit 4), Var "b"),
          Float_lit 2.0 );
    ]
  in
  let input =
    k
      [
        collapsed_distribute_parallel_for
          ~vars:[ ("a", Int_lit 3); ("b", Int_lit 4) ]
          rest;
      ]
  in
  let expected =
    k
      [
        Distribute_parallel_for
          {
            loop_var = "a";
            lo = Int_lit 0;
            hi = Int_lit 3;
            body =
              [ For { var = "b"; lo = Int_lit 0; hi = Int_lit 4; body = rest } ];
            fn_id = -1;
            sched = Sched_static;
          };
      ]
  in
  check_transform "collapse recovers the explicit 2-nest" (Passes.collapse ())
    input expected

(* The outermost decoder of a hand-collapsed nest carries no redundant
   [mod] — test/conformance/collapse_manual.omp (and clang's collapse
   lowering) write [int i = f / nj;] — so the pass recovers its extent
   by peeling the divisor off the flat bound. *)
let manual_params =
  [
    { Ir.pname = "src"; pty = Ir.P_farray };
    { Ir.pname = "out"; pty = Ir.P_farray };
    { Ir.pname = "ni"; pty = Ir.P_int };
    { Ir.pname = "nj"; pty = Ir.P_int };
  ]

let manual_rest =
  let open Ir in
  [
    Store
      ( "out",
        Binop (Add, Binop (Mul, Var "b", Var "ni"), Var "a"),
        Load ("src", Binop (Add, Binop (Mul, Var "a", Var "nj"), Var "b")) );
  ]

let manual_input =
  let open Ir in
  kernel ~name:"ka" ~params:manual_params
    [
      Distribute_parallel_for
        {
          loop_var = "f";
          lo = Int_lit 0;
          hi = Binop (Mul, Var "ni", Var "nj");
          body =
            Decl
              { name = "a"; ty = Tint; init = Binop (Div, Var "f", Var "nj") }
            :: Decl
                 { name = "b"; ty = Tint; init = Binop (Mod, Var "f", Var "nj") }
            :: manual_rest;
          fn_id = -1;
          sched = Sched_static;
        };
    ]

let ka_collapse_manual =
  let open Ir in
  let expected =
    kernel ~name:"ka" ~params:manual_params
      [
        Distribute_parallel_for
          {
            loop_var = "a";
            lo = Int_lit 0;
            hi = Var "ni";
            body =
              [
                For
                  { var = "b"; lo = Int_lit 0; hi = Var "nj"; body = manual_rest };
              ];
            fn_id = -1;
            sched = Sched_static;
          };
      ]
  in
  check_transform "collapse peels the bare-div outermost decoder"
    (Passes.collapse ()) manual_input expected

(* ... and the bare-div shape must certify end to end on the device, not
   just structurally. *)
let test_collapse_manual_exec () =
  let ni = 6 and nj = 7 in
  let bindings_of () =
    let space = Memory.space () in
    let g = Ompsimd_util.Prng.create ~seed:42 in
    ( space,
      [
        ( "src",
          Eval.B_farr
            (Memory.of_float_array space
               (Array.init (ni * nj) (fun _ ->
                    Ompsimd_util.Prng.float g 2.0 -. 1.0))) );
        ("out", Eval.B_farr (Memory.falloc space (ni * nj)));
        ("ni", Eval.B_int ni);
        ("nj", Eval.B_int nj);
      ] )
  in
  let options =
    {
      Eval.num_teams = 2;
      num_threads = 32;
      teams_mode = Omprt.Mode.Spmd;
      parallel_mode = `Auto;
      simd_len = 1;
      sharing_bytes = 2048;
    }
  in
  Alcotest.(check bool)
    "bare-div collapse certifies on the device" true
    (certify ~name:"collapse" ~options ~bindings_of ~arrays:[ "out" ]
       ~atomic:[] (Passes.collapse ()) manual_input)

let ka_interchange =
  let open Ir in
  let store =
    Store
      ( "out",
        Binop (Add, Binop (Mul, Var "i", Int_lit 4), Var "j"),
        Load ("src", Binop (Add, Binop (Mul, Var "i", Int_lit 4), Var "j")) )
  in
  let input =
    k
      [
        For
          {
            var = "i";
            lo = Int_lit 0;
            hi = Int_lit 3;
            body =
              [
                For
                  { var = "j"; lo = Int_lit 0; hi = Int_lit 4; body = [ store ] };
              ];
          };
      ]
  in
  let expected =
    k
      [
        For
          {
            var = "j";
            lo = Int_lit 0;
            hi = Int_lit 4;
            body =
              [
                For
                  { var = "i"; lo = Int_lit 0; hi = Int_lit 3; body = [ store ] };
              ];
          };
      ]
  in
  check_transform "interchange swaps the independent 2-nest"
    (Passes.interchange ()) input expected

let ka_fuse =
  let open Ir in
  let input =
    k
      [
        For
          {
            var = "i";
            lo = Int_lit 0;
            hi = Var "n";
            body = [ Store ("out", Var "i", Float_lit 1.0) ];
          };
        For
          {
            var = "i2";
            lo = Int_lit 0;
            hi = Var "n";
            body = [ Store ("src", Var "i2", Float_lit 2.0) ];
          };
      ]
  in
  let expected =
    k
      [
        For
          {
            var = "i";
            lo = Int_lit 0;
            hi = Var "n";
            body =
              [
                Store ("out", Var "i", Float_lit 1.0);
                Store ("src", Var "i", Float_lit 2.0);
              ];
          };
      ]
  in
  check_transform "fusion merges adjacent independent loops" (Passes.fuse ())
    input expected

let ka_unroll_for =
  let open Ir in
  let input =
    k
      [
        For
          {
            var = "i";
            lo = Int_lit 0;
            hi = Int_lit 2;
            body = [ Atomic_add ("out", Int_lit 0, Var "i") ];
          };
      ]
  in
  let expected =
    k
      [
        Atomic_add ("out", Int_lit 0, Int_lit 0);
        Atomic_add ("out", Int_lit 0, Int_lit 1);
      ]
  in
  check_transform "For-unroll replicates literal trips, atomics included"
    (Passes.unroll ()) input expected

let ka_tile =
  let open Ir in
  let body = [ Store ("out", Var "j", Float_lit 1.0) ] in
  let dpf inner =
    Distribute_parallel_for
      {
        loop_var = "r";
        lo = Int_lit 0;
        hi = Int_lit 1;
        body = inner;
        fn_id = -1;
        sched = Sched_static;
      }
  in
  let input =
    k [ dpf [ simd ~var:"j" ~lo:(Int_lit 0) ~hi:(Var "n") body ] ]
  in
  let expected =
    k
      [
        dpf
             [
               Decl { name = "j_lo"; ty = Tint; init = Int_lit 0 };
               Decl { name = "j_hi"; ty = Tint; init = Var "n" };
               Decl
                 {
                   name = "j_tiles";
                   ty = Tint;
                   init =
                     Binop
                       ( Div,
                         Binop
                           ( Add,
                             Binop (Sub, Var "j_hi", Var "j_lo"),
                             Int_lit 3 ),
                         Int_lit 4 );
                 };
               For
                 {
                   var = "j_t";
                   lo = Int_lit 0;
                   hi = Var "j_tiles";
                   body =
                     [
                       Simd
                         {
                           loop_var = "j";
                           lo =
                             Binop
                               ( Add,
                                 Var "j_lo",
                                 Binop (Mul, Var "j_t", Int_lit 4) );
                           hi =
                             Binop
                               ( Min,
                                 Var "j_hi",
                                 Binop
                                   ( Add,
                                     Var "j_lo",
                                     Binop
                                       ( Mul,
                                         Binop (Add, Var "j_t", Int_lit 1),
                                         Int_lit 4 ) ) );
                           body;
                           fn_id = -1;
                           sched = Sched_static;
                         };
                     ];
                 };
             ];
      ]
  in
  check_transform "tiling splits a simd loop into warp-sized rounds"
    (Passes.tile ~width:4 ()) input expected

(* targeting: #n addresses the nth loop in pre-order, @var by variable *)
let ka_targeting () =
  let open Ir in
  let loop v =
    For
      {
        var = v;
        lo = Int_lit 0;
        hi = Int_lit 2;
        body = [ Store ("out", Var v, Float_lit 1.0) ];
      }
  in
  let input = k [ loop "i"; loop "q" ] in
  let p = Ompir.Printer.kernel_to_string in
  let by_pos = Passes.run [ Passes.unroll ~target:(Passes.T_nth 1) () ] input in
  let by_var = Passes.run [ Passes.unroll ~target:(Passes.T_var "q") () ] input in
  let expected =
    k
      [
        loop "i";
        Store ("out", Int_lit 0, Float_lit 1.0);
        Store ("out", Int_lit 1, Float_lit 1.0);
      ]
  in
  Alcotest.(check string) "T_nth 1 unrolls only the second loop" (p expected)
    (p by_pos);
  Alcotest.(check string) "T_var q agrees with T_nth 1" (p expected) (p by_var)

(* --- spec parsing -------------------------------------------------------- *)

let invalid what f =
  match f () with
  | exception Invalid_argument msg -> msg
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_spec_parsing () =
  let names spec = List.map (fun p -> p.Passes.name) (Passes.pipeline_of_spec spec) in
  Alcotest.(check (list string))
    "blank means default"
    (List.map (fun p -> p.Passes.name) Passes.default_pipeline)
    (names "");
  Alcotest.(check (list string))
    "default keyword" (names "") (names "default");
  Alcotest.(check (list string)) "none is empty" [] (names "none");
  Alcotest.(check (list string))
    "explicit list" [ "fold"; "licm"; "dce" ] (names "fold,licm,dce");
  Alcotest.(check (list string))
    "arguments and targets parse" [ "unroll(16)"; "tile(8)" ]
    (names "unroll:16@i, tile:8@#2")

let test_spec_errors () =
  let check_msg what spec needles =
    let msg = invalid what (fun () -> Passes.pipeline_of_spec spec) in
    List.iter
      (fun needle ->
        if not (contains msg needle) then
          Alcotest.failf "%s: message %S should mention %S" what msg needle)
      ("OMPSIMD_PASSES" :: needles)
  in
  check_msg "unknown pass" "fold,bogus" [ "unknown pass"; "bogus"; "known:" ];
  check_msg "empty item" "fold,,dce" [ "empty pass name" ];
  check_msg "bad argument" "unroll:x" [ "unroll:x"; "argument" ];
  check_msg "zero width" "tile:0" [ "argument" ];
  check_msg "argless pass" "fold:3" [ "takes no argument" ];
  check_msg "targetless pass" "dce@i" [ "takes no target" ];
  check_msg "bad position" "licm@#x" [ "loop position" ]

(* --- offload wiring: knob, fail-fast, cache identity ---------------------- *)

let small_kernel =
  let open Ir in
  kernel ~name:"cachek" ~params
    [
      distribute_parallel_for ~var:"r" ~lo:(Int_lit 0) ~hi:(Int_lit 4)
        [
          simd ~var:"j" ~lo:(Int_lit 0) ~hi:(Int_lit 8)
            [
              Store
                ( "out",
                  Binop (Add, Binop (Mul, Var "r", Int_lit 8), Var "j"),
                  Load
                    ( "src",
                      Binop
                        ( Mod,
                          Binop (Add, Var "r", Var "j"),
                          Var "n" ) ) );
            ];
        ];
    ]

let with_env_passes value f =
  Unix.putenv "OMPSIMD_PASSES" value;
  Fun.protect ~finally:(fun () -> Unix.putenv "OMPSIMD_PASSES" "") f

let test_cache_key_distinguishes () =
  let key passes =
    Openmp.Offload.cache_key
      ~knobs:{ Openmp.Offload.default_knobs with Openmp.Offload.passes }
      small_kernel
  in
  let base = key "" in
  Alcotest.(check string) "blank spec equals default spec" base (key "default");
  let specs = [ "none"; "fold,dce"; "fold,licm,dce"; full_spec ] in
  List.iter
    (fun s ->
      if key s = base then
        Alcotest.failf "spec %S must not alias the default cache key" s)
    specs;
  let distinct = List.sort_uniq compare (List.map key specs) in
  Alcotest.(check int)
    "distinct pipelines get distinct keys" (List.length specs)
    (List.length distinct)

let test_cache_key_env_flip () =
  (* the serve scheduler keys with default knobs (blank [passes]): the
     env knob must flow into the key, so flipping OMPSIMD_PASSES can
     never hit a cache entry compiled under a different pipeline *)
  let key () = Openmp.Offload.cache_key small_kernel in
  let base = key () in
  with_env_passes "fold,licm,strength,dce" (fun () ->
      if key () = base then
        Alcotest.fail
          "OMPSIMD_PASSES flip aliased the default-pipeline cache key");
  with_env_passes "default" (fun () ->
      Alcotest.(check string)
        "explicit default env spec keeps the default key" base (key ()))

let test_fail_fast () =
  let msg =
    invalid "cache_key on malformed env" (fun () ->
        with_env_passes "fold,nonsense" (fun () ->
            Openmp.Offload.cache_key small_kernel))
  in
  List.iter
    (fun needle ->
      if not (contains msg needle) then
        Alcotest.failf "message %S should mention %S" msg needle)
    [ "OMPSIMD_PASSES"; "nonsense"; "unknown pass" ];
  let msg2 =
    invalid "compile on malformed knob" (fun () ->
        Openmp.Offload.compile ~passes:"unroll:oops" small_kernel)
  in
  if not (contains msg2 "OMPSIMD_PASSES") then
    Alcotest.failf "compile message %S should name the variable" msg2

let test_compile_with_spec () =
  (* an optimized artifact must compile and run to the same memory as the
     default one *)
  let run passes =
    let c =
      match Openmp.Offload.compile ~passes small_kernel with
      | Ok c -> c
      | Error es -> Alcotest.failf "compile failed: %s" (errs es)
    in
    let space = Memory.space () in
    let n = 32 in
    let g = Ompsimd_util.Prng.create ~seed:7 in
    let bindings =
      [
        ( "src",
          Eval.B_farr
            (Memory.of_float_array space
               (Array.init n (fun _ -> Ompsimd_util.Prng.float g 2.0 -. 1.0)))
        );
        ("out", Eval.B_farr (Memory.falloc space n));
        ("n", Eval.B_int n);
      ]
    in
    let (_ : Gpusim.Device.report) =
      Openmp.Offload.run ~cfg ~bindings c
    in
    match List.assoc "out" bindings with
    | Eval.B_farr a -> Memory.to_float_array a
    | _ -> assert false
  in
  let reference = run "" in
  List.iter
    (fun spec ->
      Alcotest.(check bool)
        (Printf.sprintf "spec %S matches default output" spec)
        true
        (run spec = reference))
    [ "none"; full_spec; "fold,tile:4,dce"; "spmdize" ]

let test_spmdize_upgrade () =
  let open Ir in
  let kk =
    kernel ~name:"gen" ~params
      [
        distribute_parallel_for ~var:"r" ~lo:(Int_lit 0) ~hi:(Int_lit 4)
          [
            Store ("out", Var "r", Float_lit 1.0);
            simd ~var:"j" ~lo:(Int_lit 0) ~hi:(Int_lit 8)
              [
                Store
                  ( "out",
                    Binop
                      ( Mod,
                        Binop
                          (Add, Binop (Mul, Var "r", Int_lit 8), Var "j"),
                        Var "n" ),
                    Float_lit 2.0 );
              ];
          ];
      ]
  in
  Alcotest.(check bool) "region starts generic" false (Ompir.Spmdize.all_spmd kk);
  let kk' = Passes.run [ Passes.spmdize_upgrade ] kk in
  Alcotest.(check bool) "upgraded to SPMD" true (Ompir.Spmdize.all_spmd kk')

let unit_cases =
  [
    Alcotest.test_case "licm known answer" `Quick ka_licm;
    Alcotest.test_case "strength known answer" `Quick ka_strength;
    Alcotest.test_case "collapse known answer" `Quick ka_collapse;
    Alcotest.test_case "collapse bare-div known answer" `Quick
      ka_collapse_manual;
    Alcotest.test_case "collapse bare-div device certification" `Quick
      test_collapse_manual_exec;
    Alcotest.test_case "interchange known answer" `Quick ka_interchange;
    Alcotest.test_case "fuse known answer" `Quick ka_fuse;
    Alcotest.test_case "unroll-for known answer" `Quick ka_unroll_for;
    Alcotest.test_case "tile known answer" `Quick ka_tile;
    Alcotest.test_case "loop targeting" `Quick ka_targeting;
    Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
    Alcotest.test_case "spec errors fail fast" `Quick test_spec_errors;
    Alcotest.test_case "cache key distinguishes pipelines" `Quick
      test_cache_key_distinguishes;
    Alcotest.test_case "cache key follows OMPSIMD_PASSES" `Quick
      test_cache_key_env_flip;
    Alcotest.test_case "malformed specs fail fast end to end" `Quick
      test_fail_fast;
    Alcotest.test_case "optimized compiles run identically" `Quick
      test_compile_with_spec;
    Alcotest.test_case "spmdize upgrade" `Quick test_spmdize_upgrade;
  ]

let suite =
  [
    ("passes", unit_cases);
    ( "passes.differential",
      List.map
        (fun t ->
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| qcheck_seed |])
            t)
        qcheck_cases );
  ]
