(* Sanitizer (ompsan) suite: known-answer conformance kernels through
   the full text pipeline under both eval engines, the static may-race
   layer on the same sources, direct shadow-state unit tests, and the
   zero-cost-when-disabled invariance contract. *)

module Memory = Gpusim.Memory
module Mode = Omprt.Mode
module Eval = Ompir.Eval
module Ompsan = Gpusim.Ompsan
module Offload = Openmp.Offload
module Clause = Openmp.Clause

let cfg = Gpusim.Config.small
let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Every run allocates a fresh global memory space whose id lands in the
   printed findings ("space#41"); blank just that id so reports from
   different runs compare equal exactly when the findings agree. *)
let normalize s =
  let tag = "space#" in
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if
        i + String.length tag <= n
        && String.sub s i (String.length tag) = tag
      then begin
        Buffer.add_string b "space#N";
        let j = ref (i + String.length tag) in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        go !j
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

let normalized_strings san = List.map normalize (Ompsan.report_strings san)

let conformance_dir = "conformance"
let load file = Ompir.Parse.kernel_of_file (Filename.concat conformance_dir file)

(* The sanitizer knob is read from the environment at launch time, so the
   tests drive it exactly the way a user would; always restore and
   re-sync the cached flag so later suites see the default. *)
let with_env pairs f =
  let old =
    List.map
      (fun (k, _) -> (k, Option.value (Sys.getenv_opt k) ~default:""))
      pairs
  in
  List.iter (fun (k, v) -> Unix.putenv k v) pairs;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (k, v) -> Unix.putenv k v) old;
      Ompsan.refresh_from_env ())
    f

(* Deterministic bindings; output arrays start zeroed (race_divergence
   branches on the initial contents of [out]). *)
let bindings_of ~sizes (k : Ompir.Ir.kernel) =
  let space = Memory.space () in
  let g = Ompsimd_util.Prng.create ~seed:77 in
  List.map
    (fun (p : Ompir.Ir.param) ->
      let b =
        match p.Ompir.Ir.pty with
        | Ompir.Ir.P_farray ->
            Eval.B_farr (Memory.falloc space (List.assoc p.Ompir.Ir.pname sizes))
        | Ompir.Ir.P_iarray ->
            let n = List.assoc p.Ompir.Ir.pname sizes in
            Eval.B_iarr
              (Memory.of_int_array space
                 (Array.init n (fun _ -> Ompsimd_util.Prng.int g 100)))
        | Ompir.Ir.P_int -> Eval.B_int (List.assoc p.Ompir.Ir.pname sizes)
        | Ompir.Ir.P_float -> Eval.B_float 1.25
      in
      (p.Ompir.Ir.pname, b))
    k.Ompir.Ir.params

let compiled_of ?(guardize = false) file =
  match Offload.compile ~guardize ~racecheck:true (load file) with
  | Ok c -> c
  | Error es ->
      Alcotest.failf "%s: compile failed: %s" file
        (String.concat "; "
           (List.map (fun (e : Ompir.Check.error) -> e.Ompir.Check.what) es))

let run_sanitized ?pool ~engine ~clauses ~sizes file =
  let c = compiled_of file in
  let bindings = bindings_of ~sizes (load file) in
  with_env
    [ ("OMPSIMD_SANITIZE", "1"); ("OMPSIMD_EVAL", engine) ]
    (fun () -> Offload.run ~cfg ?pool ~clauses ~bindings c)

let sanitizer_report (r : Gpusim.Device.report) =
  match r.Gpusim.Device.sanitizer with
  | Some san -> san
  | None -> Alcotest.fail "sanitizer report missing from an enabled run"

let engines = [ "walk"; "compile" ]

(* ------------------------------------------------------------------ *)
(* Known-answer conformance kernels                                    *)
(* ------------------------------------------------------------------ *)

let race_global_clauses =
  Clause.(
    none |> num_teams 2 |> num_threads 32 |> simdlen 8
    |> parallel_mode Mode.Spmd)

let race_global_sizes = [ ("out", 64); ("n", 64) ]

let has_race_at san ~site_sub =
  List.exists
    (function
      | Ompsan.Race { first; second; _ } ->
          contains (Ompsan.site_label first.Ompsan.a_site) site_sub
          || contains (Ompsan.site_label second.Ompsan.a_site) site_sub
      | _ -> false)
    san.Ompsan.findings

(* provenance: a race names two distinct lanes and an IR-level site *)
let race_provenance_ok san ~site_sub =
  List.exists
    (function
      | Ompsan.Race { first; second; _ } ->
          first.Ompsan.a_tid <> second.Ompsan.a_tid
          && first.Ompsan.a_block >= 0
          && second.Ompsan.a_block >= 0
          && contains (Ompsan.site_label second.Ompsan.a_site) site_sub
      | _ -> false)
    san.Ompsan.findings

let test_race_global engine () =
  let r =
    run_sanitized ~engine ~clauses:race_global_clauses
      ~sizes:race_global_sizes "race_global.omp"
  in
  let san = sanitizer_report r in
  check_bool "report is dirty" false (Ompsan.is_clean san);
  check_bool "race at store out[i]" true (has_race_at san ~site_sub:"store out[i]");
  check_bool "block/lane/site provenance" true
    (race_provenance_ok san ~site_sub:"store out[i]")

let race_sharing_clauses =
  Clause.(
    none |> num_teams 2 |> num_threads 32 |> simdlen 8
    |> parallel_mode Mode.Spmd)

let race_sharing_sizes =
  [ ("marks", 4); ("out", 64); ("rows", 8); ("width", 8) ]

let test_race_sharing engine () =
  let r =
    run_sanitized ~engine ~clauses:race_sharing_clauses
      ~sizes:race_sharing_sizes "race_sharing.omp"
  in
  let san = sanitizer_report r in
  check_bool "report is dirty" false (Ompsan.is_clean san);
  check_bool "race at store marks[0]" true
    (has_race_at san ~site_sub:"store marks[0]");
  check_bool "cross-block race surfaced" true
    (List.exists
       (function Ompsan.Cross_race _ -> true | _ -> false)
       san.Ompsan.findings)

let divergence_clauses =
  Clause.(
    none |> num_teams 1 |> num_threads 32 |> simdlen 2
    |> parallel_mode Mode.Spmd)

let test_race_divergence engine () =
  let c = compiled_of "race_divergence.omp" in
  let bindings = bindings_of ~sizes:[ ("out", 8); ("n", 1) ] (load "race_divergence.omp") in
  with_env
    [ ("OMPSIMD_SANITIZE", "1"); ("OMPSIMD_EVAL", engine) ]
    (fun () ->
      match Offload.run ~cfg ~clauses:divergence_clauses ~bindings c with
      | (_ : Gpusim.Device.report) ->
          Alcotest.fail "divergent kernel was expected to deadlock"
      | exception Gpusim.Engine.Deadlock msg ->
          check_bool "deadlock report carries barrier ids" true
            (contains msg "#");
          let aborted = Ompsan.take_aborted () in
          check_bool "divergence finding recovered from aborted block" true
            (List.exists
               (function
                 | Ompsan.Divergence
                     { stalled_tid; arriving_tid; stalled_bar; arriving_bar; _ }
                   ->
                     stalled_tid <> arriving_tid && stalled_bar <> arriving_bar
                 | _ -> false)
               aborted);
          (* the redundant SPMD region store to out[0] is one logical
             lane's work: it must NOT be reported as a race *)
          check_bool "no race on the region-level store" false
            (List.exists
               (function Ompsan.Race _ -> true | _ -> false)
               aborted))

let atomic_clean_clauses =
  Clause.(
    none |> num_teams 2 |> num_threads 32 |> simdlen 4
    |> parallel_mode Mode.Spmd)

let atomic_clean_sizes = [ ("bins", 4); ("data", 64); ("n", 64) ]

let test_atomic_clean engine () =
  let r =
    run_sanitized ~engine ~clauses:atomic_clean_clauses
      ~sizes:atomic_clean_sizes "atomic_clean.omp"
  in
  let san = sanitizer_report r in
  check_bool "atomics do not race" true (Ompsan.is_clean san)

(* The ten behavioural conformance kernels are race-free by
   construction; the sanitizer must agree (true-negative coverage). *)
let clean_cases =
  [
    ("saxpy.omp", [ ("x", 96); ("y", 96); ("n", 96) ]);
    ("atomic_histogram.omp", [ ("data", 64); ("bins", 8); ("n", 64) ]);
    ( "reduction_dot.omp",
      [ ("a", 15 * 11); ("b", 15 * 11); ("out", 15); ("rows", 15); ("width", 11) ] );
    ( "guarded_rowinit.omp",
      [ ("marks", 13); ("out", 13 * 6); ("rows", 13); ("width", 6) ] );
    ("schedules.omp", [ ("out", 17 * 9); ("rows", 17); ("width", 9) ]);
    ("nested_for.omp", [ ("x", 40); ("out", 40); ("n", 40) ]);
    ("conditionals.omp", [ ("x", 50); ("out", 50); ("n", 50) ]);
    ("intrinsics.omp", [ ("x", 30); ("out", 30); ("n", 30) ]);
    ("two_regions.omp", [ ("a", 60); ("b", 60); ("n", 60) ]);
    ( "collapse_manual.omp",
      [ ("src", 7 * 9); ("dst", 7 * 9); ("ni", 7); ("nj", 9) ] );
  ]

let clean_clauses = Clause.(none |> num_teams 2 |> num_threads 64 |> simdlen 4)

let test_clean_kernels engine () =
  List.iter
    (fun (file, sizes) ->
      let r = run_sanitized ~engine ~clauses:clean_clauses ~sizes file in
      let san = sanitizer_report r in
      check_bool (Printf.sprintf "%s is sanitizer-clean" file) true
        (Ompsan.is_clean san))
    clean_cases

(* Identical verdict text across engines: site labels come from the IR,
   not the evaluation strategy. *)
let test_engines_agree () =
  let strings engine file clauses sizes =
    normalized_strings
      (sanitizer_report (run_sanitized ~engine ~clauses ~sizes file))
  in
  List.iter
    (fun (file, clauses, sizes) ->
      let walk = strings "walk" file clauses sizes in
      let staged = strings "compile" file clauses sizes in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: identical findings across engines" file)
        walk staged)
    [
      ("race_global.omp", race_global_clauses, race_global_sizes);
      ("race_sharing.omp", race_sharing_clauses, race_sharing_sizes);
    ]

(* Identical verdicts sequential vs pooled: shadow state is per-block
   and per-domain, findings merge in ascending block id. *)
let test_pool_invariance () =
  let sequential =
    normalized_strings
      (sanitizer_report
         (run_sanitized ~engine:"compile" ~clauses:race_sharing_clauses
            ~sizes:race_sharing_sizes "race_sharing.omp"))
  in
  let pool = Gpusim.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Gpusim.Pool.shutdown pool)
    (fun () ->
      let pooled =
        normalized_strings
          (sanitizer_report
             (run_sanitized ~pool ~engine:"compile"
                ~clauses:race_sharing_clauses ~sizes:race_sharing_sizes
                "race_sharing.omp"))
      in
      Alcotest.(check (list string))
        "sequential and pooled reports identical" sequential pooled)

(* ------------------------------------------------------------------ *)
(* Zero-cost-when-disabled invariance                                  *)
(* ------------------------------------------------------------------ *)

let test_disabled_invariance () =
  let run env =
    let file, sizes = List.hd clean_cases in
    let c = compiled_of file in
    let bindings = bindings_of ~sizes (load file) in
    with_env env (fun () ->
        Offload.run ~cfg ~clauses:clean_clauses ~bindings c)
  in
  let off = run [ ("OMPSIMD_SANITIZE", "0") ] in
  let on_ = run [ ("OMPSIMD_SANITIZE", "1") ] in
  check_bool "disabled run has no sanitizer report" true
    (off.Gpusim.Device.sanitizer = None);
  check_bool "enabled run has a sanitizer report" true
    (on_.Gpusim.Device.sanitizer <> None);
  (* the hooks charge no virtual time and bump no counters: an enabled
     run of a clean kernel is bit-identical to a disabled one *)
  check_bool "time_cycles identical" true
    (off.Gpusim.Device.time_cycles = on_.Gpusim.Device.time_cycles);
  check_bool "counters identical" true
    (Gpusim.Counters.equal off.Gpusim.Device.counters
       on_.Gpusim.Device.counters)

(* ------------------------------------------------------------------ *)
(* Shadow-state unit tests (no device, no IR)                          *)
(* ------------------------------------------------------------------ *)

let with_sanitizer_on f =
  Ompsan.enabled := true;
  Fun.protect ~finally:(fun () -> Ompsan.refresh_from_env ()) f

let unit_threads n =
  let counters = Gpusim.Counters.create () in
  let warp = Gpusim.Thread.make_warp ~cfg ~warp_index:0 in
  Array.init n (fun tid ->
      Gpusim.Thread.create ~cfg ~counters ~block_id:0 ~tid ~warp ())

let finish_block () = Ompsan.launch_report [| Ompsan.block_end () |]

let test_shared_conflict_unit () =
  with_sanitizer_on (fun () ->
      let th = unit_threads 2 in
      Ompsan.set_kernel "unit";
      Ompsan.block_begin ~block_id:0 ~num_threads:2 ~warp_size:32;
      Ompsan.shared_access th.(0) ~aid:0 ~addr:4 ~kind:Ompsan.Write;
      Ompsan.shared_access th.(1) ~aid:0 ~addr:4 ~kind:Ompsan.Write;
      let report = finish_block () in
      check_bool "unsynchronized same-cell writes race" false
        (Ompsan.is_clean report);
      check_int "exactly one finding" 1 (List.length report.Ompsan.findings))

let test_shared_barrier_separates () =
  with_sanitizer_on (fun () ->
      let th = unit_threads 2 in
      Ompsan.set_kernel "unit";
      Ompsan.block_begin ~block_id:0 ~num_threads:2 ~warp_size:32;
      Ompsan.shared_access th.(0) ~aid:0 ~addr:4 ~kind:Ompsan.Write;
      let arrive t =
        Ompsan.barrier_arrive t ~block_scope:true ~mask:0 ~bar_id:1
          ~bar_name:"b" ~expected:2 ~participants:[ 0; 1 ]
      in
      arrive th.(0);
      arrive th.(1);
      Ompsan.shared_access th.(1) ~aid:0 ~addr:4 ~kind:Ompsan.Write;
      check_bool "a barrier separates the writes" true
        (Ompsan.is_clean (finish_block ())))

let test_same_actor_exempt () =
  with_sanitizer_on (fun () ->
      let th = unit_threads 2 in
      Ompsan.set_kernel "unit";
      Ompsan.block_begin ~block_id:0 ~num_threads:2 ~warp_size:32;
      (* both lanes execute region code for logical thread 0 *)
      ignore (Ompsan.set_actor th.(1) 0);
      Ompsan.shared_access th.(0) ~aid:0 ~addr:4 ~kind:Ompsan.Write;
      Ompsan.shared_access th.(1) ~aid:0 ~addr:4 ~kind:Ompsan.Write;
      check_bool "same-actor redundant writes do not race" true
        (Ompsan.is_clean (finish_block ()));
      (* restoring per-tid attribution re-arms the detector *)
      Ompsan.block_begin ~block_id:0 ~num_threads:2 ~warp_size:32;
      let prev = Ompsan.set_actor th.(1) 0 in
      ignore (Ompsan.set_actor th.(1) prev);
      Ompsan.shared_access th.(0) ~aid:0 ~addr:4 ~kind:Ompsan.Write;
      Ompsan.shared_access th.(1) ~aid:0 ~addr:4 ~kind:Ompsan.Write;
      check_bool "distinct actors race again" false
        (Ompsan.is_clean (finish_block ())))

let test_atomic_exempt_unit () =
  with_sanitizer_on (fun () ->
      let th = unit_threads 2 in
      Ompsan.set_kernel "unit";
      Ompsan.block_begin ~block_id:0 ~num_threads:2 ~warp_size:32;
      Ompsan.shared_access th.(0) ~aid:0 ~addr:8 ~kind:Ompsan.Atomic;
      Ompsan.shared_access th.(1) ~aid:0 ~addr:8 ~kind:Ompsan.Atomic;
      check_bool "atomic-atomic is clean" true
        (Ompsan.is_clean (finish_block ()));
      Ompsan.block_begin ~block_id:0 ~num_threads:2 ~warp_size:32;
      Ompsan.shared_access th.(0) ~aid:0 ~addr:8 ~kind:Ompsan.Atomic;
      Ompsan.shared_access th.(1) ~aid:0 ~addr:8 ~kind:Ompsan.Write;
      check_bool "atomic-write still races" false
        (Ompsan.is_clean (finish_block ())))

(* ------------------------------------------------------------------ *)
(* Static may-race layer on the same sources                           *)
(* ------------------------------------------------------------------ *)

let static_findings file = (compiled_of file).Offload.may_races

let test_static_verdicts () =
  (* racy kernels are flagged, with the right store site *)
  let flagged file site_sub =
    let fs = static_findings file in
    check_bool (Printf.sprintf "%s statically flagged" file) true (fs <> []);
    check_bool
      (Printf.sprintf "%s flags %s" file site_sub)
      true
      (List.exists
         (fun (f : Ompir.Racecheck.finding) -> contains f.Ompir.Racecheck.site site_sub)
         fs)
  in
  flagged "race_global.omp" "store out[i]";
  flagged "race_sharing.omp" "store marks[0]";
  flagged "race_divergence.omp" "store out[0]";
  (* atomics are exempt *)
  check_int "atomic_clean.omp statically clean" 0
    (List.length (static_findings "atomic_clean.omp"));
  (* static findings surface as compiler remarks *)
  let c = compiled_of "race_global.omp" in
  check_bool "may-race remark emitted" true
    (List.exists (fun s -> contains s "may-race") (Offload.remarks c))

let test_static_clean_kernels () =
  List.iter
    (fun (file, _) ->
      let fs = static_findings file in
      check_bool
        (Printf.sprintf "%s statically clean (%s)" file
           (String.concat "; "
              (List.map Ompir.Racecheck.finding_to_string fs)))
        true (fs = []))
    clean_cases

(* Static and dynamic layers agree on every conformance kernel: a
   statically-flagged kernel is dynamically dirty (or divergent) and a
   statically-clean one runs sanitizer-clean. *)
let test_layers_agree () =
  let dynamic_dirty =
    [
      ("race_global.omp", race_global_clauses, race_global_sizes);
      ("race_sharing.omp", race_sharing_clauses, race_sharing_sizes);
    ]
  in
  List.iter
    (fun (file, clauses, sizes) ->
      check_bool (Printf.sprintf "%s: static layer flags it" file) true
        (static_findings file <> []);
      let san =
        sanitizer_report (run_sanitized ~engine:"compile" ~clauses ~sizes file)
      in
      check_bool (Printf.sprintf "%s: dynamic layer confirms" file) false
        (Ompsan.is_clean san))
    dynamic_dirty;
  List.iter
    (fun (file, sizes) ->
      check_bool (Printf.sprintf "%s: static layer is quiet" file) true
        (static_findings file = []);
      let san =
        sanitizer_report
          (run_sanitized ~engine:"compile" ~clauses:clean_clauses ~sizes file)
      in
      check_bool (Printf.sprintf "%s: dynamic layer agrees" file) true
        (Ompsan.is_clean san))
    clean_cases

let engine_cases name f =
  List.map
    (fun engine ->
      Alcotest.test_case (Printf.sprintf "%s [%s]" name engine) `Quick
        (f engine))
    engines

let suite =
  [
    ( "ompsan.conformance",
      engine_cases "race_global" test_race_global
      @ engine_cases "race_sharing" test_race_sharing
      @ engine_cases "race_divergence" test_race_divergence
      @ engine_cases "atomic_clean" test_atomic_clean
      @ engine_cases "clean kernels" test_clean_kernels
      @ [
          Alcotest.test_case "engines agree" `Quick test_engines_agree;
          Alcotest.test_case "pool invariance" `Quick test_pool_invariance;
        ] );
    ( "ompsan.invariance",
      [ Alcotest.test_case "disabled is zero-cost" `Quick test_disabled_invariance ] );
    ( "ompsan.shadow",
      [
        Alcotest.test_case "conflict" `Quick test_shared_conflict_unit;
        Alcotest.test_case "barrier separates" `Quick test_shared_barrier_separates;
        Alcotest.test_case "same actor exempt" `Quick test_same_actor_exempt;
        Alcotest.test_case "atomic exempt" `Quick test_atomic_exempt_unit;
      ] );
    ( "ompsan.static",
      [
        Alcotest.test_case "racy kernels flagged" `Quick test_static_verdicts;
        Alcotest.test_case "clean kernels quiet" `Quick test_static_clean_kernels;
        Alcotest.test_case "layers agree" `Quick test_layers_agree;
      ] );
  ]
