(* Tests for the OpenACC facade: the §1 gang/worker/vector equivalence. *)

module Memory = Gpusim.Memory
module Acc = Openacc.Acc

let cfg = Gpusim.Config.small
let checkf = Alcotest.check (Alcotest.float 1e-9)
let check_bool = Alcotest.check Alcotest.bool

let test_acc_three_levels () =
  let space = Memory.space () in
  let rows = 29 and len = 17 in
  let out = Memory.falloc space (rows * len) in
  List.iter
    (fun (mode, vl) ->
      Memory.fill out 0.0;
      let (_ : Gpusim.Device.report) =
        Acc.parallel ~cfg ~num_gangs:3 ~num_workers:4 ~vector_length:vl ~mode
          (fun ctx ->
            Acc.loop_gang_worker ctx ~trip:rows (fun r ->
                Acc.loop_vector ctx ~trip:len (fun j ->
                    Memory.fset out ctx.Omprt.Team.th
                      ((r * len) + j)
                      (float_of_int ((r * len) + j)))))
      in
      for idx = 0 to (rows * len) - 1 do
        checkf "identity" (float_of_int idx) (Memory.host_get out idx)
      done)
    [ (Omprt.Mode.Spmd, 8); (Omprt.Mode.Generic, 8); (Omprt.Mode.Spmd, 32) ]

let test_acc_gang_then_worker () =
  (* separate gang and worker loops, the classic OpenACC nesting *)
  let space = Memory.space () in
  let rows = 12 and len = 21 in
  let out = Memory.falloc space (rows * len) in
  let (_ : Gpusim.Device.report) =
    Acc.parallel ~cfg ~num_gangs:4 ~num_workers:8 ~vector_length:4
      ~mode:Omprt.Mode.Generic (fun ctx ->
        Acc.loop_gang ctx ~trip:rows (fun r ->
            Acc.loop_worker ctx ~trip:len (fun j ->
                Memory.fset out ctx.Omprt.Team.th ((r * len) + j) 1.0)))
  in
  for idx = 0 to (rows * len) - 1 do
    checkf "covered" 1.0 (Memory.host_get out idx)
  done

let test_acc_vector_reduction () =
  let total = ref 0.0 in
  let (_ : Gpusim.Device.report) =
    Acc.parallel ~cfg ~num_gangs:1 ~num_workers:1 ~vector_length:16
      (fun ctx ->
        if Acc.worker_num ctx = 0 then
          total := Acc.loop_vector_sum ctx ~trip:64 (fun i -> float_of_int i))
  in
  checkf "sum" 2016.0 !total

let test_acc_validation () =
  check_bool "bad vector length" true
    (try
       ignore (Acc.parallel ~cfg ~vector_length:5 (fun _ -> ()));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "openacc",
      [
        Alcotest.test_case "three levels" `Quick test_acc_three_levels;
        Alcotest.test_case "gang then worker" `Quick test_acc_gang_then_worker;
        Alcotest.test_case "vector reduction" `Quick test_acc_vector_reduction;
        Alcotest.test_case "validation" `Quick test_acc_validation;
      ] );
  ]
