let () =
  Alcotest.run "ompsimd"
    (List.concat [ Test_util.suite; Test_gpusim.suite; Test_omprt.suite; Test_workloads.suite; Test_ompir.suite; Test_openmp.suite; Test_openacc.suite; Test_differential.suite; Test_passes.suite; Test_conformance.suite; Test_ompsan.suite; Test_serve.suite; Test_fault.suite; Test_model.suite; Test_experiments.suite ])
