(* Unit, integration and property tests for the OpenMP device runtime —
   the paper's core contribution. *)

module Config = Gpusim.Config
module Memory = Gpusim.Memory
module Counters = Gpusim.Counters
module Thread = Gpusim.Thread
module Shared = Gpusim.Shared
module Trace = Gpusim.Trace
module Mode = Omprt.Mode
module Payload = Omprt.Payload
module Simd_group = Omprt.Simd_group
module Sharing = Omprt.Sharing
module Team = Omprt.Team
module Workshare = Omprt.Workshare
module Simd = Omprt.Simd
module Parallel = Omprt.Parallel
module Target = Omprt.Target
module Reduction = Omprt.Reduction

let cfg = Config.small
let checkf = Alcotest.check (Alcotest.float 1e-9)
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

(* --- Simd_group geometry ---------------------------------------------- *)

let test_geometry_paper_example () =
  (* §5.3.1: 128 threads across 4 warps -> between 4 and 64 groups. *)
  let g2 = Simd_group.make ~warp_size:32 ~num_workers:128 ~group_size:2 in
  check_int "64 groups at size 2" 64 g2.Simd_group.num_groups;
  let g32 = Simd_group.make ~warp_size:32 ~num_workers:128 ~group_size:32 in
  check_int "4 groups at size 32" 4 g32.Simd_group.num_groups

let test_geometry_ids () =
  let g = Simd_group.make ~warp_size:32 ~num_workers:64 ~group_size:8 in
  check_int "group of tid 19" 2 (Simd_group.get_simd_group g ~tid:19);
  check_int "lane of tid 19" 3 (Simd_group.get_simd_group_id g ~tid:19);
  check_bool "tid 16 leads" true (Simd_group.is_simd_group_leader g ~tid:16);
  check_bool "tid 19 follows" false (Simd_group.is_simd_group_leader g ~tid:19);
  check_int "leader of group 5" 40 (Simd_group.leader_tid g ~group:5)

let test_geometry_mask_stays_in_warp () =
  List.iter
    (fun gs ->
      let g = Simd_group.make ~warp_size:32 ~num_workers:128 ~group_size:gs in
      for tid = 0 to 127 do
        let mask = Simd_group.simdmask g ~tid in
        check_int "mask covers the group" gs (Ompsimd_util.Mask.popcount mask);
        check_bool "thread in own mask" true
          (Ompsimd_util.Mask.mem mask (tid mod 32))
      done)
    [ 1; 2; 4; 8; 16; 32 ]

let test_geometry_validation () =
  check_bool "size 3 rejected" true
    (try
       ignore (Simd_group.make ~warp_size:32 ~num_workers:32 ~group_size:3);
       false
     with Invalid_argument _ -> true);
  check_bool "multi-warp group rejected" true
    (try
       ignore (Simd_group.make ~warp_size:32 ~num_workers:64 ~group_size:64);
       false
     with Invalid_argument _ -> true)

let test_geometry_valid_sizes () =
  check_int "six legal simdlens" 6
    (List.length (Simd_group.valid_group_sizes ~warp_size:32))

(* --- Payload ----------------------------------------------------------- *)

let test_payload_typed_access () =
  let sp = Memory.space () in
  let arr = Memory.falloc sp 4 in
  let p =
    Payload.of_list [ Payload.Int (ref 7); Payload.Float (ref 2.5); Payload.Farr arr ]
  in
  check_int "int slot" 7 !(Payload.int_ref p 0);
  checkf "float slot" 2.5 !(Payload.float_ref p 1);
  check_int "farr slot" 4 (Memory.flength (Payload.farr p 2));
  check_int "bytes" 24 (Payload.bytes p)

let test_payload_type_errors () =
  let p = Payload.of_list [ Payload.Int (ref 1) ] in
  check_bool "wrong type" true
    (try
       ignore (Payload.float_ref p 0);
       false
     with Payload.Type_error _ -> true);
  check_bool "out of range" true
    (try
       ignore (Payload.int_ref p 3);
       false
     with Payload.Type_error _ -> true)

(* --- Sharing ------------------------------------------------------------ *)

let test_sharing_reservation () =
  let arena = Shared.arena_of_capacity 4096 in
  let s = Sharing.create ~arena ~bytes:2048 in
  check_int "arena consumed" 2048 (Shared.used arena);
  check_int "total" 2048 (Sharing.total_bytes s)

let test_sharing_overflow_reservation () =
  let arena = Shared.arena_of_capacity 1024 in
  check_bool "too big" true
    (try
       ignore (Sharing.create ~arena ~bytes:2048);
       false
     with Invalid_argument _ -> true)

let test_sharing_slices () =
  let arena = Shared.arena_of_capacity 4096 in
  let s = Sharing.create ~arena ~bytes:2048 in
  Sharing.configure s ~num_groups:15;
  check_int "slice = total/(groups+1)" 128 (Sharing.slice_bytes s)

let run_single_thread f =
  ignore
    (Gpusim.Engine.run_block ~cfg ~block_id:0 ~num_threads:1 (fun th -> f th))

let is_shared = function Sharing.Shared_space _ -> true | _ -> false
let is_fallback = function Sharing.Global_fallback _ -> true | _ -> false

let test_sharing_acquire_paths () =
  let arena = Shared.arena_of_capacity 4096 in
  let s = Sharing.create ~arena ~bytes:2048 in
  Sharing.configure s ~num_groups:3;
  run_single_thread (fun th ->
      check_bool "fits" true (is_shared (Sharing.acquire s th ~bytes:1536));
      (* 1536 live + 1024 > 2048: the slab is genuinely out of room *)
      check_bool "overflows" true
        (is_fallback (Sharing.acquire s th ~bytes:1024)));
  check_int "one fallback" 1 (Sharing.global_fallbacks s);
  check_int "one grant" 1 (Sharing.shared_grants s)

let test_sharing_paper_sizing () =
  (* The paper's 1024 -> 2048 growth: with 16 concurrent publishers of an
     80-byte payload the old reservation runs out, the new one never
     does. *)
  let mk bytes =
    let arena = Shared.arena_of_capacity 8192 in
    let s = Sharing.create ~arena ~bytes in
    Sharing.configure s ~num_groups:15;
    s
  in
  let old_s = mk 1024 and new_s = mk 2048 in
  run_single_thread (fun th ->
      for _ = 1 to 16 do
        ignore (Sharing.acquire old_s th ~bytes:80);
        ignore (Sharing.acquire new_s th ~bytes:80)
      done);
  check_bool "old runs out at 16 x 80B" true
    (Sharing.global_fallbacks old_s > 0);
  check_int "new fits all publishers" 0 (Sharing.global_fallbacks new_s);
  check_int "new granted all" 16 (Sharing.shared_grants new_s)

let test_sharing_lifo_discipline () =
  let arena = Shared.arena_of_capacity 4096 in
  let s = Sharing.create ~arena ~bytes:2048 in
  Sharing.configure s ~num_groups:0;
  run_single_thread (fun th ->
      let a = Sharing.acquire s th ~bytes:512 in
      let b = Sharing.acquire s th ~bytes:512 in
      let c = Sharing.acquire s th ~bytes:512 in
      check_int "stacked" 1536 (Sharing.used_bytes s);
      check_int "three live" 3 (Sharing.live_slices s);
      Sharing.release s c;
      Sharing.release s b;
      Sharing.release s a;
      check_int "stack drained" 0 (Sharing.used_bytes s);
      check_int "none live" 0 (Sharing.live_slices s);
      (* a fresh acquire reuses the bottom of the slab *)
      match Sharing.acquire s th ~bytes:2048 with
      | Sharing.Shared_space { offset; _ } ->
          check_int "whole slab reusable" 0 offset
      | Sharing.Global_fallback _ -> Alcotest.fail "expected a shared grant")

let test_sharing_out_of_order_release () =
  let arena = Shared.arena_of_capacity 4096 in
  let s = Sharing.create ~arena ~bytes:2048 in
  Sharing.configure s ~num_groups:0;
  run_single_thread (fun th ->
      (* concurrent SIMD mains do not release in stack order *)
      let a = Sharing.acquire s th ~bytes:512 in
      let b = Sharing.acquire s th ~bytes:512 in
      let c = Sharing.acquire s th ~bytes:512 in
      Sharing.release s a;
      (* the freed inner hole is recycled before the stack grows *)
      (match Sharing.acquire s th ~bytes:256 with
      | Sharing.Shared_space { offset; _ } -> check_int "first fit" 0 offset
      | Sharing.Global_fallback _ -> Alcotest.fail "expected a shared grant");
      check_int "no new stack growth" 1536 (Sharing.high_water s);
      Sharing.release s b;
      Sharing.release s c;
      check_int "only the recycled slice lives" 256 (Sharing.used_bytes s);
      check_int "no fallbacks" 0 (Sharing.global_fallbacks s))

let test_sharing_pool_reuse () =
  let arena = Shared.arena_of_capacity 4096 in
  let s = Sharing.create ~arena ~bytes:1024 in
  Sharing.configure s ~num_groups:0;
  run_single_thread (fun th ->
      let hold = Sharing.acquire s th ~bytes:1024 in
      let t0 = Gpusim.Thread.clock th in
      let f1 = Sharing.acquire s th ~bytes:512 in
      let fresh_cost = Gpusim.Thread.clock th -. t0 in
      check_bool "first overflow is a fallback" true (is_fallback f1);
      check_int "one pool buffer" 1 (Sharing.pool_slots s);
      Sharing.release s f1;
      let t1 = Gpusim.Thread.clock th in
      let f2 = Sharing.acquire s th ~bytes:512 in
      let reuse_cost = Gpusim.Thread.clock th -. t1 in
      check_bool "second overflow is a fallback" true (is_fallback f2);
      check_int "pool buffer reused, not grown" 1 (Sharing.pool_slots s);
      check_int "reuse counted" 1 (Sharing.pool_reuses s);
      check_bool "reuse skips the malloc round-trip" true
        (reuse_cost < fresh_cost);
      Sharing.release s f2;
      Sharing.release s hold)

let test_sharing_configure_reset () =
  let arena = Shared.arena_of_capacity 4096 in
  let s = Sharing.create ~arena ~bytes:2048 in
  Sharing.configure s ~num_groups:0;
  run_single_thread (fun th ->
      let a = Sharing.acquire s th ~bytes:512 in
      (* a reconfigure must not clobber a slice a faster sibling already
         holds in the next region *)
      Sharing.configure s ~num_groups:4;
      check_int "live slice survives reconfigure" 512 (Sharing.used_bytes s);
      Sharing.release s a;
      Sharing.configure s ~num_groups:4;
      check_int "idle reconfigure resets" 0 (Sharing.used_bytes s))

(* --- Team --------------------------------------------------------------- *)

let params ?(num_teams = 2) ?(num_threads = 64) ?(teams_mode = Mode.Spmd)
    ?(sharing_bytes = Sharing.default_bytes) () =
  { Team.num_teams; num_threads; teams_mode; sharing_bytes }

let test_team_block_threads () =
  check_int "spmd block" 64
    (Team.block_threads ~cfg (params ~teams_mode:Mode.Spmd ()));
  (* generic mode adds the extra main warp (Fig 2) *)
  check_int "generic block" 96
    (Team.block_threads ~cfg (params ~teams_mode:Mode.Generic ()))

let test_team_roles () =
  let arena = Shared.arena_of_capacity 8192 in
  let t =
    Team.create ~cfg ~arena ~params:(params ~teams_mode:Mode.Generic ())
      ~block_id:0
  in
  check_bool "tid 0 works" true (Team.role t ~tid:0 = Team.Worker);
  check_bool "tid 63 works" true (Team.role t ~tid:63 = Team.Worker);
  check_bool "tid 64 is main" true (Team.role t ~tid:64 = Team.Team_main);
  check_bool "tid 65 inactive" true (Team.role t ~tid:65 = Team.Inactive_main_lane)

let test_team_validation () =
  let arena = Shared.arena_of_capacity 8192 in
  check_bool "non warp multiple" true
    (try
       ignore (Team.create ~cfg ~arena ~params:(params ~num_threads:48 ()) ~block_id:0);
       false
     with Invalid_argument _ -> true)

let test_team_geometry_requires_region () =
  let arena = Shared.arena_of_capacity 8192 in
  let t = Team.create ~cfg ~arena ~params:(params ()) ~block_id:0 in
  check_bool "no region" true
    (try
       ignore (Team.geometry t);
       false
     with Failure _ -> true)

(* --- Workshare: pure iteration sets ------------------------------------ *)

let test_workshare_static_partition () =
  let trip = 37 and num = 5 in
  let all =
    List.concat_map
      (fun id -> Workshare.iterations Workshare.Static ~id ~num ~trip)
      (List.init num Fun.id)
  in
  check_int "covers exactly" trip (List.length all);
  check_bool "is a permutation" true
    (List.sort compare all = List.init trip Fun.id)

let test_workshare_chunked_partition () =
  let trip = 103 and num = 4 and chunk = 7 in
  let all =
    List.concat_map
      (fun id -> Workshare.iterations (Workshare.Chunked chunk) ~id ~num ~trip)
      (List.init num Fun.id)
  in
  check_bool "partition" true (List.sort compare all = List.init trip Fun.id)

let test_workshare_empty_trip () =
  check_int "empty" 0
    (List.length (Workshare.iterations Workshare.Static ~id:0 ~num:4 ~trip:0))

(* --- End-to-end kernels ------------------------------------------------- *)

(* A 2-D kernel: [rows] outer iterations each with [len] inner iterations;
   out[r*len + j] = 2*x[r*len + j] + r.  Exercises distribute-parallel-for
   over rows and simd over the inner loop. *)
let run_scale_kernel ~teams_mode ~parallel_mode ~simd_len ~rows ~len
    ?(cfg = cfg) ?(sharing_bytes = Sharing.default_bytes) () =
  let sp = Memory.space () in
  let n = rows * len in
  let x = Memory.of_float_array sp (Array.init n (fun i -> float_of_int i)) in
  let out = Memory.falloc sp n in
  let p =
    params ~num_teams:2 ~num_threads:64 ~teams_mode ~sharing_bytes ()
  in
  let report =
    Target.launch ~cfg ~params:p ~dispatch_table_size:4 (fun ctx ->
        Parallel.parallel ctx ~mode:parallel_mode ~simd_len ~fn_id:0
          (fun ctx _ ->
            Workshare.distribute_parallel_for ctx ~trip:rows (fun r ->
                Simd.simd ctx ~fn_id:1 ~trip:len (fun ctx j _ ->
                    let i = (r * len) + j in
                    let v = Memory.fget x ctx.Team.th i in
                    Team.charge_flops ctx 2;
                    Memory.fset out ctx.Team.th i
                      ((2.0 *. v) +. float_of_int r)))))
  in
  (report, Memory.to_float_array out)

let reference_scale ~rows ~len =
  Array.init (rows * len) (fun i ->
      let r = i / len in
      (2.0 *. float_of_int i) +. float_of_int r)

let check_scale_result ~rows ~len out =
  let expected = reference_scale ~rows ~len in
  Array.iteri
    (fun i v ->
      if abs_float (v -. expected.(i)) > 1e-9 then
        Alcotest.failf "out[%d] = %f, expected %f" i v expected.(i))
    out

let test_kernel_spmd_spmd () =
  let _, out =
    run_scale_kernel ~teams_mode:Mode.Spmd ~parallel_mode:Mode.Spmd ~simd_len:8
      ~rows:13 ~len:23 ()
  in
  check_scale_result ~rows:13 ~len:23 out

let test_kernel_spmd_generic () =
  let report, out =
    run_scale_kernel ~teams_mode:Mode.Spmd ~parallel_mode:Mode.Generic
      ~simd_len:8 ~rows:13 ~len:23 ()
  in
  check_scale_result ~rows:13 ~len:23 out;
  check_bool "state machine ran" true
    (Counters.get_extra report.Gpusim.Device.counters "simd.state_machine_rounds"
    > 0.0)

let test_kernel_generic_teams () =
  let report, out =
    run_scale_kernel ~teams_mode:Mode.Generic ~parallel_mode:Mode.Spmd
      ~simd_len:8 ~rows:13 ~len:23 ()
  in
  check_scale_result ~rows:13 ~len:23 out;
  check_bool "team state machine ran" true
    (Counters.get_extra report.Gpusim.Device.counters
       "target.state_machine_wakeups"
    > 0.0)

let test_kernel_generic_generic () =
  let _, out =
    run_scale_kernel ~teams_mode:Mode.Generic ~parallel_mode:Mode.Generic
      ~simd_len:4 ~rows:7 ~len:9 ()
  in
  check_scale_result ~rows:7 ~len:9 out

let test_kernel_all_group_sizes () =
  List.iter
    (fun simd_len ->
      List.iter
        (fun parallel_mode ->
          let _, out =
            run_scale_kernel ~teams_mode:Mode.Spmd ~parallel_mode ~simd_len
              ~rows:11 ~len:17 ()
          in
          check_scale_result ~rows:11 ~len:17 out)
        [ Mode.Spmd; Mode.Generic ])
    [ 1; 2; 4; 8; 16; 32 ]

let test_kernel_amd_degradation () =
  (* Without warp barriers, generic-mode simd must degrade to sequential
     execution but still compute the right answer. *)
  let report, out =
    run_scale_kernel ~cfg:Config.amd_like ~teams_mode:Mode.Spmd
      ~parallel_mode:Mode.Generic ~simd_len:8 ~rows:9 ~len:14 ()
  in
  check_scale_result ~rows:9 ~len:14 out;
  check_bool "sequential fallback used" true
    (Counters.get_extra report.Gpusim.Device.counters "simd.sequential" > 0.0);
  checkf "no warp barriers on amd" 0.0
    (float_of_int report.Gpusim.Device.counters.Counters.warp_barriers)

let test_kernel_empty_simd_loop () =
  let _, out =
    run_scale_kernel ~teams_mode:Mode.Spmd ~parallel_mode:Mode.Generic
      ~simd_len:8 ~rows:3 ~len:0 ()
  in
  check_int "nothing written" 0 (Array.length out)

let test_kernel_trip_smaller_than_group () =
  let _, out =
    run_scale_kernel ~teams_mode:Mode.Spmd ~parallel_mode:Mode.Generic
      ~simd_len:32 ~rows:5 ~len:3 ()
  in
  check_scale_result ~rows:5 ~len:3 out

(* Coverage: every (row, j) iteration must be executed exactly once, in
   every mode, because stores live inside the simd body. *)
let coverage_counts ~teams_mode ~parallel_mode ~simd_len ~rows ~len =
  let sp = Memory.space () in
  let counts = Memory.ialloc sp (rows * len) in
  let p = params ~num_teams:3 ~num_threads:32 ~teams_mode () in
  ignore
    (Target.launch ~cfg ~params:p (fun ctx ->
         Parallel.parallel ctx ~mode:parallel_mode ~simd_len (fun ctx _ ->
             Workshare.distribute_parallel_for ctx ~trip:rows (fun r ->
                 Simd.simd ctx ~trip:len (fun ctx j _ ->
                     ignore
                       (Memory.atomic_iadd counts ctx.Team.th ((r * len) + j) 1))))));
  Memory.to_int_array counts

let test_kernel_exactly_once () =
  List.iter
    (fun (teams_mode, parallel_mode, simd_len) ->
      let counts =
        coverage_counts ~teams_mode ~parallel_mode ~simd_len ~rows:10 ~len:13
      in
      Array.iteri
        (fun i c -> if c <> 1 then Alcotest.failf "iteration %d ran %d times" i c)
        counts)
    [
      (Mode.Spmd, Mode.Spmd, 4);
      (Mode.Spmd, Mode.Generic, 4);
      (Mode.Generic, Mode.Spmd, 16);
      (Mode.Generic, Mode.Generic, 16);
      (Mode.Spmd, Mode.Spmd, 1);
      (Mode.Generic, Mode.Generic, 1);
    ]

(* Successive parallel regions in one kernel may use different SIMD group
   sizes (§5.3.1: "the size of a SIMD group can differ among different
   parallel regions"). *)
let test_kernel_varying_group_sizes () =
  let sp = Memory.space () in
  let n = 96 in
  let out1 = Memory.falloc sp n and out2 = Memory.falloc sp n in
  let p = params ~num_teams:2 ~num_threads:32 ~teams_mode:Mode.Generic () in
  ignore
    (Target.launch ~cfg ~params:p (fun ctx ->
         Parallel.parallel ctx ~mode:Mode.Generic ~simd_len:4 (fun ctx _ ->
             Workshare.distribute_parallel_for ctx ~trip:(n / 8) (fun b ->
                 Simd.simd ctx ~trip:8 (fun ctx j _ ->
                     Memory.fset out1 ctx.Team.th ((b * 8) + j) 1.0)));
         Parallel.parallel ctx ~mode:Mode.Generic ~simd_len:16 (fun ctx _ ->
             Workshare.distribute_parallel_for ctx ~trip:(n / 16) (fun b ->
                 Simd.simd ctx ~trip:16 (fun ctx j _ ->
                     Memory.fset out2 ctx.Team.th ((b * 16) + j) 2.0)))));
  for idx = 0 to n - 1 do
    checkf "first region" 1.0 (Memory.host_get out1 idx);
    checkf "second region" 2.0 (Memory.host_get out2 idx)
  done

(* A simd loop nested under a sequential For inside the parallel region:
   the leader iterates, the group joins every simd loop (the SpMV
   per-row pattern, repeated). *)
let test_kernel_simd_under_sequential_for () =
  let sp = Memory.space () in
  let rows = 9 and len = 11 in
  let out = Memory.falloc sp (rows * len) in
  let p = params ~num_teams:1 ~num_threads:32 ~teams_mode:Mode.Spmd () in
  ignore
    (Target.launch ~cfg ~params:p (fun ctx ->
         Parallel.parallel ctx ~mode:Mode.Generic ~simd_len:8 (fun ctx _ ->
             Workshare.omp_for ctx ~trip:3 (fun chunk ->
                 for r = chunk * 3 to min rows ((chunk + 1) * 3) - 1 do
                   Simd.simd ctx ~trip:len (fun ctx j _ ->
                       Memory.fset out ctx.Team.th ((r * len) + j)
                         (float_of_int r))
                 done))));
  for r = 0 to rows - 1 do
    for j = 0 to len - 1 do
      checkf "nested" (float_of_int r) (Memory.host_get out ((r * len) + j))
    done
  done

(* Dynamic scheduling: exactly-once coverage regardless of mode/geometry,
   and the counter resets correctly across consecutive loops. *)
let test_dynamic_schedule_coverage () =
  List.iter
    (fun (parallel_mode, simd_len, chunk) ->
      let sp = Memory.space () in
      let trip = 137 in
      let counts = Memory.ialloc sp trip in
      let p = params ~num_teams:3 ~num_threads:64 ~teams_mode:Mode.Spmd () in
      ignore
        (Target.launch ~cfg ~params:p (fun ctx ->
             Parallel.parallel ctx ~mode:parallel_mode ~simd_len (fun ctx _ ->
                 Workshare.distribute_parallel_for ctx
                   ~schedule:(Workshare.Dynamic chunk) ~trip (fun i ->
                     Simd.simd ctx ~trip:1 (fun ctx _ _ ->
                         ignore (Memory.atomic_iadd counts ctx.Team.th i 1)));
                 (* a second dynamic loop reuses the counter *)
                 Workshare.distribute_parallel_for ctx
                   ~schedule:(Workshare.Dynamic chunk) ~trip (fun i ->
                     Simd.simd ctx ~trip:1 (fun ctx _ _ ->
                         ignore (Memory.atomic_iadd counts ctx.Team.th i 1))))));
      Array.iteri
        (fun i c ->
          if c <> 2 then
            Alcotest.failf "dynamic: iteration %d ran %d times (mode %s gs %d)"
              i c (Mode.to_string parallel_mode) simd_len)
        (Memory.to_int_array counts))
    [
      (Mode.Spmd, 1, 1);
      (Mode.Spmd, 8, 3);
      (Mode.Generic, 8, 1);
      (Mode.Generic, 32, 5);
    ]

let test_dynamic_rejects_bad_chunk () =
  let p = params ~num_teams:1 ~num_threads:32 () in
  check_bool "chunk 0" true
    (try
       ignore
         (Target.launch ~cfg ~params:p (fun ctx ->
              Parallel.parallel ctx ~mode:Mode.Spmd ~simd_len:1 (fun ctx _ ->
                  Workshare.omp_for ctx ~schedule:(Workshare.Dynamic 0) ~trip:4
                    (fun _ -> ()))));
       false
     with Invalid_argument _ -> true)

let test_nested_parallel_rejected () =
  let p = params ~num_teams:1 ~num_threads:32 () in
  check_bool "nested rejected" true
    (try
       ignore
         (Target.launch ~cfg ~params:p (fun ctx ->
              Parallel.parallel ctx ~mode:Mode.Spmd ~simd_len:1 (fun ctx _ ->
                  Parallel.parallel ctx ~mode:Mode.Spmd ~simd_len:1
                    (fun _ _ -> ()))));
       false
     with Failure msg -> Astring_like.contains msg "nested");
  (* sequential regions after one another remain fine *)
  ignore
    (Target.launch ~cfg ~params:p (fun ctx ->
         Parallel.parallel ctx ~mode:Mode.Spmd ~simd_len:1 (fun _ _ -> ());
         Parallel.parallel ctx ~mode:Mode.Spmd ~simd_len:1 (fun _ _ -> ())))

(* --- Mode cost ordering ------------------------------------------------- *)

let test_generic_mode_costs_more () =
  let time (teams_mode, parallel_mode) =
    let report, _ =
      run_scale_kernel ~teams_mode ~parallel_mode ~simd_len:8 ~rows:64 ~len:24
        ()
    in
    report.Gpusim.Device.time_cycles
  in
  let spmd = time (Mode.Spmd, Mode.Spmd) in
  let generic_parallel = time (Mode.Spmd, Mode.Generic) in
  check_bool "generic parallel slower than spmd" true (generic_parallel > spmd)

let test_simd_len1_matches_two_level () =
  (* simdlen 1 must behave as the classic two-level runtime: no simd
     state machine activity at all. *)
  let report, _ =
    run_scale_kernel ~teams_mode:Mode.Spmd ~parallel_mode:Mode.Generic
      ~simd_len:1 ~rows:6 ~len:7 ()
  in
  checkf "no state machine rounds" 0.0
    (Counters.get_extra report.Gpusim.Device.counters "simd.state_machine_rounds")

(* --- Sharing-space integration ----------------------------------------- *)

let test_sharing_fallback_in_kernel () =
  (* Publish a payload too large for the per-group slice: 40 args * 8 B
     with 16 groups (+1 main slice) exceeds 2048/17 = 120 B. *)
  let sp = Memory.space () in
  let arr = Memory.falloc sp 4 in
  let big_payload =
    Payload.of_list (List.init 40 (fun _ -> Payload.Farr arr))
  in
  let p = params ~num_teams:1 ~num_threads:32 ~teams_mode:Mode.Spmd () in
  let report =
    Target.launch ~cfg ~params:p (fun ctx ->
        Parallel.parallel ctx ~mode:Mode.Generic ~simd_len:2 (fun ctx _ ->
            Simd.simd ctx ~payload:big_payload ~trip:4 (fun _ _ _ -> ())))
  in
  check_bool "global fallback triggered" true
    (Counters.get_extra report.Gpusim.Device.counters "sharing.global_fallbacks"
    > 0.0)

(* --- Reductions (extension) --------------------------------------------- *)

let test_simd_reduction () =
  let sp = Memory.space () in
  let out = Memory.falloc sp 8 in
  let p = params ~num_teams:1 ~num_threads:32 ~teams_mode:Mode.Spmd () in
  ignore
    (Target.launch ~cfg ~params:p (fun ctx ->
         Parallel.parallel ctx ~mode:Mode.Spmd ~simd_len:4 (fun ctx _ ->
             (* every lane contributes its group-lane id + 1 *)
             let g = Team.geometry ctx.Team.team in
             let tid = ctx.Team.th.Thread.tid in
             let lane = Simd_group.get_simd_group_id g ~tid in
             let v = float_of_int (lane + 1) in
             let total = Reduction.simd_sum ctx v in
             if Simd_group.is_simd_group_leader g ~tid then
               Memory.fset out ctx.Team.th
                 (Simd_group.get_simd_group g ~tid)
                 total)));
  (* 1+2+3+4 = 10 for every group *)
  for gidx = 0 to 7 do
    checkf "group sum" 10.0 (Memory.host_get out gidx)
  done

let test_team_reduction_spmd () =
  let sp = Memory.space () in
  let out = Memory.falloc sp 1 in
  let p = params ~num_teams:1 ~num_threads:32 ~teams_mode:Mode.Spmd () in
  ignore
    (Target.launch ~cfg ~params:p (fun ctx ->
         Parallel.parallel ctx ~mode:Mode.Spmd ~simd_len:4 (fun ctx _ ->
             let g = Team.geometry ctx.Team.team in
             let tid = ctx.Team.th.Thread.tid in
             let group = Simd_group.get_simd_group g ~tid in
             (* each OpenMP thread (group) contributes group+1; lanes agree *)
             let total = Reduction.team_reduce ctx Reduction.sum (float_of_int (group + 1)) in
             if tid = 0 then Memory.fset out ctx.Team.th 0 total)));
  (* 8 groups: 1+2+...+8 = 36 *)
  checkf "team sum" 36.0 (Memory.host_get out 0)

let test_team_reduction_generic () =
  let sp = Memory.space () in
  let out = Memory.falloc sp 1 in
  let p = params ~num_teams:1 ~num_threads:32 ~teams_mode:Mode.Spmd () in
  ignore
    (Target.launch ~cfg ~params:p (fun ctx ->
         Parallel.parallel ctx ~mode:Mode.Generic ~simd_len:8 (fun ctx _ ->
             let g = Team.geometry ctx.Team.team in
             let tid = ctx.Team.th.Thread.tid in
             let group = Simd_group.get_simd_group g ~tid in
             let total = Reduction.team_reduce ctx Reduction.sum (float_of_int (group + 1)) in
             if group = 0 then Memory.fset out ctx.Team.th 0 total)));
  (* 4 groups: 1+2+3+4 = 10 *)
  checkf "team sum generic" 10.0 (Memory.host_get out 0)

let test_simd_reduce_max_in_loop () =
  (* per-row max via the reducing-loop protocol, generic mode: workers
     must combine with the published operator *)
  let sp = Memory.space () in
  let rows = 6 and len = 37 in
  let data =
    Memory.of_float_array sp
      (Array.init (rows * len) (fun i -> float_of_int ((i * 7919) mod 97)))
  in
  let out = Memory.falloc sp rows in
  let p = params ~num_teams:1 ~num_threads:32 ~teams_mode:Mode.Spmd () in
  ignore
    (Target.launch ~cfg ~params:p (fun ctx ->
         Parallel.parallel ctx ~mode:Mode.Generic ~simd_len:8 (fun ctx _ ->
             Workshare.distribute_parallel_for ctx ~trip:rows (fun r ->
                 let m =
                   Simd.simd_reduce ctx ~op:Omprt.Redop.max ~trip:len
                     (fun ctx j _ ->
                       Memory.fget data ctx.Team.th ((r * len) + j))
                 in
                 Memory.fset out ctx.Team.th r m))));
  for r = 0 to rows - 1 do
    let expected = ref Float.neg_infinity in
    for j = 0 to len - 1 do
      expected := Float.max !expected (float_of_int (((r * len) + j) * 7919 mod 97))
    done;
    checkf "row max" !expected (Memory.host_get out r)
  done

let test_reduction_max () =
  let p = params ~num_teams:1 ~num_threads:32 ~teams_mode:Mode.Spmd () in
  let result = ref 0.0 in
  ignore
    (Target.launch ~cfg ~params:p (fun ctx ->
         Parallel.parallel ctx ~mode:Mode.Spmd ~simd_len:32 (fun ctx _ ->
             let tid = ctx.Team.th.Thread.tid in
             let m = Reduction.simd_reduce ctx Reduction.max_op (float_of_int tid) in
             if tid = 0 then result := m)));
  checkf "max" 31.0 !result

(* --- Dispatch cost (§5.5) ----------------------------------------------- *)

let test_dispatch_cascade_vs_indirect () =
  let time fn_id table =
    let p = params ~num_teams:1 ~num_threads:32 () in
    let report =
      Target.launch ~cfg ~params:p ~dispatch_table_size:table (fun ctx ->
          Parallel.parallel ctx ~mode:Mode.Spmd ~simd_len:1 ~fn_id (fun _ _ -> ()))
    in
    report.Gpusim.Device.time_cycles
  in
  let known = time 0 4 in
  let unknown = time 99 4 in
  check_bool "indirect call costs more" true (unknown > known)

(* --- qcheck properties --------------------------------------------------- *)

let qcheck_cases =
  let open QCheck in
  let modes = [ Mode.Spmd; Mode.Generic ] in
  let group_sizes = [ 1; 2; 4; 8; 16; 32 ] in
  [
    Test.make ~name:"random region sequences complete and cover" ~count:40
      (* a kernel made of N parallel regions with random modes, group
         sizes, trip counts and nested structure: the ultimate deadlock
         hunter for the barrier protocols *)
      (pair (int_range 1 5)
         (list_of_size Gen.(int_range 1 4)
            (quad (int_range 0 1) (int_range 0 5) (int_range 0 40) bool)))
      (fun (teams, regions) ->
        let sp = Memory.space () in
        let sizes = Array.make (List.length regions) 0 in
        let outs =
          List.mapi (fun i (_, _, trip, _) ->
              sizes.(i) <- max 1 trip;
              Memory.ialloc sp (max 1 trip))
            regions
        in
        let p = params ~num_teams:teams ~num_threads:64 ~teams_mode:Mode.Spmd () in
        ignore
          (Target.launch ~cfg ~params:p (fun ctx ->
               List.iteri
                 (fun i (mode_idx, gs_idx, trip, with_simd) ->
                   let out = List.nth outs i in
                   Parallel.parallel ctx
                     ~mode:(List.nth modes mode_idx)
                     ~simd_len:(List.nth group_sizes gs_idx)
                     (fun ctx _ ->
                       Workshare.distribute_parallel_for ctx ~trip (fun r ->
                           if with_simd then
                             Simd.simd ctx ~trip:3 (fun ctx j _ ->
                                 if j = 0 then
                                   ignore (Memory.atomic_iadd out ctx.Team.th r 1))
                           else
                             Simd.simd ctx ~trip:1 (fun ctx _ _ ->
                                 ignore (Memory.atomic_iadd out ctx.Team.th r 1)))))
                 regions));
        List.for_all2
          (fun out (_, _, trip, _) ->
            let arr = Memory.to_int_array out in
            let ok = ref true in
            for r = 0 to trip - 1 do
              if arr.(r) <> 1 then ok := false
            done;
            !ok)
          outs regions);
    Test.make ~name:"workshare schedules partition the space" ~count:300
      (triple (int_range 0 200) (int_range 1 16) (int_range 1 8))
      (fun (trip, num, chunk) ->
        let ids = List.init num Fun.id in
        let static =
          List.concat_map
            (fun id -> Workshare.iterations Workshare.Static ~id ~num ~trip)
            ids
        in
        let chunked =
          List.concat_map
            (fun id ->
              Workshare.iterations (Workshare.Chunked chunk) ~id ~num ~trip)
            ids
        in
        let full = List.init trip Fun.id in
        List.sort compare static = full && List.sort compare chunked = full);
    Test.make ~name:"simd masks partition each warp" ~count:100
      (int_range 0 5)
      (fun k ->
        let gs = 1 lsl k in
        let g = Simd_group.make ~warp_size:32 ~num_workers:64 ~group_size:gs in
        (* union of group masks of warp 0's threads covers the warp *)
        let acc = ref 0 in
        for tid = 0 to 31 do
          if Simd_group.get_simd_group_id g ~tid = 0 then
            acc := Ompsimd_util.Mask.union !acc (Simd_group.simdmask g ~tid)
        done;
        !acc = Ompsimd_util.Mask.full ~warp_size:32);
    Test.make ~name:"scale kernel correct for random shapes/modes" ~count:25
      (quad (int_range 1 20) (int_range 0 40) (int_range 0 1) (int_range 0 5))
      (fun (rows, len, mode_idx, gs_idx) ->
        let parallel_mode = List.nth modes mode_idx in
        let simd_len = List.nth group_sizes gs_idx in
        let _, out =
          run_scale_kernel ~teams_mode:Mode.Spmd ~parallel_mode ~simd_len
            ~rows ~len ()
        in
        let expected = reference_scale ~rows ~len in
        Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) out expected);
    Test.make ~name:"sharing placement never changes results" ~count:25
      (* the allocator decides WHERE a payload lives (stack slice, recycled
         hole, or pooled global fallback) — never WHAT the kernel computes.
         Starve the reservation down to where everything falls back through
         the pool and the results must still match the sequential
         reference bit for bit. *)
      (pair
         (quad (int_range 1 20) (int_range 0 40) (int_range 0 1)
            (int_range 0 5))
         (int_range 0 2))
      (fun ((rows, len, mode_idx, gs_idx), sb_idx) ->
        let parallel_mode = List.nth modes mode_idx in
        let simd_len = List.nth group_sizes gs_idx in
        let sharing_bytes = List.nth [ 64; 256; 2048 ] sb_idx in
        let _, out =
          run_scale_kernel ~teams_mode:Mode.Spmd ~parallel_mode ~simd_len
            ~rows ~len ~sharing_bytes ()
        in
        let expected = reference_scale ~rows ~len in
        Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) out expected);
    Test.make ~name:"sharing slice shrinks with groups" ~count:100
      (int_range 1 64)
      (fun groups ->
        let arena = Shared.arena_of_capacity 8192 in
        let s = Sharing.create ~arena ~bytes:2048 in
        Sharing.configure s ~num_groups:groups;
        Sharing.slice_bytes s = 2048 / (groups + 1));
  ]

let suite =
  [
    ( "omprt.simd_group",
      [
        Alcotest.test_case "paper example" `Quick test_geometry_paper_example;
        Alcotest.test_case "ids" `Quick test_geometry_ids;
        Alcotest.test_case "masks stay in warp" `Quick test_geometry_mask_stays_in_warp;
        Alcotest.test_case "validation" `Quick test_geometry_validation;
        Alcotest.test_case "valid sizes" `Quick test_geometry_valid_sizes;
      ] );
    ( "omprt.payload",
      [
        Alcotest.test_case "typed access" `Quick test_payload_typed_access;
        Alcotest.test_case "type errors" `Quick test_payload_type_errors;
      ] );
    ( "omprt.sharing",
      [
        Alcotest.test_case "reservation" `Quick test_sharing_reservation;
        Alcotest.test_case "reservation overflow" `Quick test_sharing_overflow_reservation;
        Alcotest.test_case "slices" `Quick test_sharing_slices;
        Alcotest.test_case "acquire paths" `Quick test_sharing_acquire_paths;
        Alcotest.test_case "paper sizing 1024 vs 2048" `Quick test_sharing_paper_sizing;
        Alcotest.test_case "lifo discipline" `Quick test_sharing_lifo_discipline;
        Alcotest.test_case "out-of-order release" `Quick
          test_sharing_out_of_order_release;
        Alcotest.test_case "pool reuse" `Quick test_sharing_pool_reuse;
        Alcotest.test_case "configure reset" `Quick test_sharing_configure_reset;
      ] );
    ( "omprt.team",
      [
        Alcotest.test_case "block threads" `Quick test_team_block_threads;
        Alcotest.test_case "roles" `Quick test_team_roles;
        Alcotest.test_case "validation" `Quick test_team_validation;
        Alcotest.test_case "geometry requires region" `Quick test_team_geometry_requires_region;
      ] );
    ( "omprt.workshare",
      [
        Alcotest.test_case "static partition" `Quick test_workshare_static_partition;
        Alcotest.test_case "chunked partition" `Quick test_workshare_chunked_partition;
        Alcotest.test_case "empty trip" `Quick test_workshare_empty_trip;
      ] );
    ( "omprt.kernels",
      [
        Alcotest.test_case "spmd/spmd" `Quick test_kernel_spmd_spmd;
        Alcotest.test_case "spmd/generic" `Quick test_kernel_spmd_generic;
        Alcotest.test_case "generic teams" `Quick test_kernel_generic_teams;
        Alcotest.test_case "generic/generic" `Quick test_kernel_generic_generic;
        Alcotest.test_case "all group sizes" `Quick test_kernel_all_group_sizes;
        Alcotest.test_case "amd degradation" `Quick test_kernel_amd_degradation;
        Alcotest.test_case "empty simd loop" `Quick test_kernel_empty_simd_loop;
        Alcotest.test_case "trip < group" `Quick test_kernel_trip_smaller_than_group;
        Alcotest.test_case "exactly once" `Quick test_kernel_exactly_once;
        Alcotest.test_case "generic costs more" `Quick test_generic_mode_costs_more;
        Alcotest.test_case "simdlen 1 = two-level" `Quick test_simd_len1_matches_two_level;
        Alcotest.test_case "sharing fallback in kernel" `Quick test_sharing_fallback_in_kernel;
        Alcotest.test_case "varying group sizes" `Quick test_kernel_varying_group_sizes;
        Alcotest.test_case "simd under sequential for" `Quick
          test_kernel_simd_under_sequential_for;
        Alcotest.test_case "dynamic schedule coverage" `Quick
          test_dynamic_schedule_coverage;
        Alcotest.test_case "dynamic bad chunk" `Quick test_dynamic_rejects_bad_chunk;
        Alcotest.test_case "nested parallel rejected" `Quick
          test_nested_parallel_rejected;
      ] );
    ( "omprt.reduction",
      [
        Alcotest.test_case "simd sum" `Quick test_simd_reduction;
        Alcotest.test_case "team sum spmd" `Quick test_team_reduction_spmd;
        Alcotest.test_case "team sum generic" `Quick test_team_reduction_generic;
        Alcotest.test_case "simd max" `Quick test_reduction_max;
        Alcotest.test_case "reducing loop with max" `Quick
          test_simd_reduce_max_in_loop;
      ] );
    ( "omprt.dispatch",
      [
        Alcotest.test_case "cascade vs indirect" `Quick test_dispatch_cascade_vs_indirect;
      ] );
    ("omprt.properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
  ]
