(* Tests for the IR / codegen layer: outlining, globalization,
   SPMD-ization, the checker, and end-to-end evaluation on the runtime. *)

module Memory = Gpusim.Memory
module Mode = Omprt.Mode
module Ir = Ompir.Ir
module Check = Ompir.Check
module Outline = Ompir.Outline
module Globalize = Ompir.Globalize
module Spmdize = Ompir.Spmdize
module Printer = Ompir.Printer
module Eval = Ompir.Eval

let cfg = Gpusim.Config.small
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* y[r] += values[k] * x[col[k]] over CSR rows — the paper's sparse_matvec
   written in the IR. *)
let spmv_kernel =
  Ir.kernel ~name:"spmv"
    ~params:
      [
        { Ir.pname = "row_ptr"; pty = Ir.P_iarray };
        { Ir.pname = "col"; pty = Ir.P_iarray };
        { Ir.pname = "values"; pty = Ir.P_farray };
        { Ir.pname = "x"; pty = Ir.P_farray };
        { Ir.pname = "y"; pty = Ir.P_farray };
        { Ir.pname = "n"; pty = Ir.P_int };
      ]
    [
      Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
        [
          Ir.Decl { name = "lo"; ty = Ir.Tint; init = Ir.Load_int ("row_ptr", Ir.v "r") };
          Ir.Decl
            {
              name = "hi";
              ty = Ir.Tint;
              init = Ir.Load_int ("row_ptr", Ir.(v "r" + i 1));
            };
          Ir.simd ~var:"k" ~lo:(Ir.v "lo") ~hi:(Ir.v "hi")
            [
              Ir.Atomic_add
                ( "y",
                  Ir.v "r",
                  Ir.(Binop (Mul, Load ("values", v "k"),
                       Load ("x", Load_int ("col", v "k")))) );
            ];
        ];
    ]

(* A vector-scale kernel whose parallel body is tightly nested (SPMD-able). *)
let scale_kernel =
  Ir.kernel ~name:"scale"
    ~params:
      [
        { Ir.pname = "src"; pty = Ir.P_farray };
        { Ir.pname = "dst"; pty = Ir.P_farray };
        { Ir.pname = "n"; pty = Ir.P_int };
        { Ir.pname = "alpha"; pty = Ir.P_float };
      ]
    [
      Ir.distribute_parallel_for ~var:"blk" ~lo:(Ir.i 0)
        ~hi:Ir.(v "n" / i 16)
        [
          Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i 16)
            [
              Ir.Decl
                {
                  name = "idx";
                  ty = Ir.Tint;
                  init = Ir.(Binop (Add, Binop (Mul, v "blk", i 16), v "j"));
                };
              Ir.Store
                ("dst", Ir.v "idx",
                 Ir.(Binop (Mul, v "alpha", Load ("src", v "idx"))));
            ];
        ];
    ]

(* A kernel with a side effect in the sequential part of the parallel
   body: must be classified generic. *)
let generic_kernel =
  Ir.kernel ~name:"needs_generic"
    ~params:
      [
        { Ir.pname = "a"; pty = Ir.P_farray };
        { Ir.pname = "marks"; pty = Ir.P_farray };
        { Ir.pname = "n"; pty = Ir.P_int };
      ]
    [
      Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
        [
          (* sequential store outside the simd loop: a side effect *)
          Ir.Store ("marks", Ir.v "r", Ir.f 1.0);
          Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i 8)
            [ Ir.Store ("a", Ir.(Binop (Add, Binop (Mul, v "r", i 8), v "j")), Ir.f 2.0) ];
        ];
    ]

(* --- Check ------------------------------------------------------------- *)

let test_check_accepts_good () =
  List.iter
    (fun k ->
      match Check.kernel k with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "unexpected errors: %s"
            (String.concat "; "
               (List.map (fun (e : Check.error) -> e.Check.what) es)))
    [ spmv_kernel; scale_kernel; generic_kernel ]

let expect_error k msg_fragment =
  match Check.kernel k with
  | Ok () -> Alcotest.failf "expected a check error (%s)" msg_fragment
  | Error es ->
      check_bool msg_fragment true
        (List.exists
           (fun (e : Check.error) ->
             Astring_like.contains e.Check.what msg_fragment
             || Astring_like.contains e.Check.where msg_fragment)
           es)

let mk_kernel body =
  Ir.kernel ~name:"t"
    ~params:
      [
        { Ir.pname = "a"; pty = Ir.P_farray };
        { Ir.pname = "n"; pty = Ir.P_int };
      ]
    body

let test_check_unbound_var () =
  expect_error (mk_kernel [ Ir.Assign ("ghost", Ir.i 1) ]) "unbound"

let test_check_type_mismatch () =
  expect_error
    (mk_kernel
       [ Ir.Decl { name = "v"; ty = Ir.Tfloat; init = Ir.i 3 } ])
    "wrong type"

let test_check_simd_position () =
  (* simd directly at region level is illegal *)
  expect_error
    (mk_kernel [ Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i 4) [] ])
    "illegal position"

let test_check_simd_captured_assign () =
  expect_error
    (mk_kernel
       [
         Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
           [
             Ir.Decl { name = "acc"; ty = Ir.Tfloat; init = Ir.f 0.0 };
             Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i 4)
               [ Ir.Assign ("acc", Ir.f 1.0) ];
           ];
       ])
    "captured scalar"

let test_check_loop_var_assign () =
  expect_error
    (mk_kernel
       [
         Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
           [ Ir.Assign ("r", Ir.i 0) ];
       ])
    "loop variable"

let test_check_array_kind () =
  expect_error
    (mk_kernel [ Ir.Assign ("n", Ir.Unop (Ir.To_int, Ir.Load_int ("a", Ir.i 0))) ])
    "wrong element kind"

(* --- free_vars / outline ------------------------------------------------ *)

let test_free_vars () =
  let body =
    [
      Ir.Decl { name = "t"; ty = Ir.Tint; init = Ir.v "n" };
      Ir.Store ("a", Ir.v "t", Ir.Load ("b", Ir.v "k"));
    ]
  in
  Alcotest.(check (list string)) "free" [ "a"; "b"; "k"; "n" ]
    (Ir.free_vars body)

let test_outline_ids_and_captures () =
  let p = Outline.run spmv_kernel in
  check_int "two outlined regions" 2 (Outline.dispatch_table_size p);
  let dpf = Outline.find p ~fn_id:0 in
  check_bool "outer kind" true (dpf.Outline.kind = `Distribute_parallel_for);
  let simd = Outline.find p ~fn_id:1 in
  check_bool "inner kind" true (simd.Outline.kind = `Simd);
  (* the simd body captures the arrays and the row's scalars *)
  Alcotest.(check (list string)) "simd captures"
    [ "col"; "hi"; "lo"; "r"; "values"; "x"; "y" ]
    simd.Outline.captures;
  check_bool "loop var not captured" true
    (not (List.mem "k" simd.Outline.captures))

let test_outline_annotates_ast () =
  let p = Outline.run spmv_kernel in
  let ids =
    Ir.fold_directives
      (fun acc s ->
        match s with
        | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
            d.Ir.fn_id :: acc
        | _ -> acc)
      [] p.Outline.kernel.Ir.body
  in
  Alcotest.(check (list int)) "annotated ids" [ 1; 0 ] ids

(* --- globalize ----------------------------------------------------------- *)

let test_globalize_spmv () =
  let p = Outline.run spmv_kernel in
  match Globalize.run p with
  | [ r ] ->
      check_int "simd region" 1 r.Globalize.fn_id;
      (* lo/hi are region-local scalars that workers must reach *)
      Alcotest.(check (list string)) "globalized" [ "hi"; "lo" ]
        (List.sort compare r.Globalize.globalized);
      check_bool "arrays already global" true
        (List.mem "values" r.Globalize.already_global);
      check_int "total" 2 (Globalize.total_globalized [ r ])
  | rs -> Alcotest.failf "expected one simd report, got %d" (List.length rs)

let test_globalize_none_needed () =
  let p = Outline.run scale_kernel in
  match Globalize.run p with
  | [ r ] -> check_int "nothing local captured" 0 (List.length r.Globalize.globalized)
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

(* --- spmdize -------------------------------------------------------------- *)

let test_spmdize () =
  check_bool "scale kernel is SPMD" true (Spmdize.all_spmd scale_kernel);
  check_bool "spmv body is SPMD too (loads only)" true
    (Spmdize.all_spmd spmv_kernel);
  (match Spmdize.analyze generic_kernel with
  | [ (_, mode) ] -> check_bool "store outside simd -> generic" true (mode = Mode.Generic)
  | _ -> Alcotest.fail "one directive expected");
  (* declarations + assignments to locals stay SPMD *)
  let local_ok =
    mk_kernel
      [
        Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
          [
            Ir.Decl { name = "t"; ty = Ir.Tint; init = Ir.i 0 };
            Ir.Assign ("t", Ir.(v "t" + i 1));
            Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.v "t") [];
          ];
      ]
  in
  check_bool "local assigns are SPMD-safe" true (Spmdize.all_spmd local_ok)

(* --- printer ---------------------------------------------------------------- *)

let test_printer () =
  let s = Printer.kernel_to_string (Outline.run spmv_kernel).Outline.kernel in
  List.iter
    (fun fragment ->
      check_bool fragment true (Astring_like.contains s fragment))
    [
      "void spmv";
      "#pragma omp teams distribute parallel for";
      "#pragma omp simd";
      "#pragma omp atomic";
      "row_ptr[(r + 1)]";
    ]

(* --- host reference interpreter ---------------------------------------- *)

module Hosteval = Ompir.Hosteval

let test_hosteval_basics () =
  let src = {src|
kernel h(double* a, int* b, int n) {
  #pragma omp teams distribute parallel for
  for (r = 0; r < n; r++) {
    double acc = 0.0;
    int k = 0;
    while (k < 3) {
      acc = acc + (double)k;
      k = k + 1;
    }
    #pragma omp simd
    for (j = 0; j < 1; j++) {
      a[r] = acc;
      b[r] = r * 2;
    }
  }
}
|src}
  in
  let k = Ompir.Parse.kernel src in
  let space = Memory.space () in
  let a = Memory.falloc space 10 in
  let b = Memory.ialloc space 10 in
  Hosteval.run
    ~bindings:[ ("a", Eval.B_farr a); ("b", Eval.B_iarr b); ("n", Eval.B_int 10) ]
    k;
  for r = 0 to 9 do
    checkf "while sum" 3.0 (Memory.host_get a r);
    check_int "int store" (r * 2) (Memory.host_geti b r)
  done

let test_hosteval_binding_errors () =
  let k = mk_kernel [] in
  check_bool "missing binding" true
    (try
       Hosteval.run ~bindings:[] k;
       false
     with Hosteval.Error _ -> true)

(* --- eval end-to-end -------------------------------------------------------- *)

let spmv_instance rows =
  let g = Ompsimd_util.Prng.create ~seed:5 in
  let space = Memory.space () in
  let lengths = Array.init rows (fun _ -> Ompsimd_util.Prng.int g 12) in
  let row_ptr = Array.make (rows + 1) 0 in
  Array.iteri (fun r l -> row_ptr.(r + 1) <- row_ptr.(r) + l) lengths;
  let nnz = row_ptr.(rows) in
  let col = Array.init (max 1 nnz) (fun _ -> Ompsimd_util.Prng.int g rows) in
  let values =
    Array.init (max 1 nnz) (fun _ -> Ompsimd_util.Prng.float g 2.0 -. 1.0)
  in
  let x = Array.init rows (fun i -> cos (float_of_int i)) in
  let expected =
    Array.init rows (fun r ->
        let acc = ref 0.0 in
        for k = row_ptr.(r) to row_ptr.(r + 1) - 1 do
          acc := !acc +. (values.(k) *. x.(col.(k)))
        done;
        !acc)
  in
  let bindings =
    [
      ("row_ptr", Eval.B_iarr (Memory.of_int_array space row_ptr));
      ("col", Eval.B_iarr (Memory.of_int_array space col));
      ("values", Eval.B_farr (Memory.of_float_array space values));
      ("x", Eval.B_farr (Memory.of_float_array space x));
      ("y", Eval.B_farr (Memory.falloc space rows));
      ("n", Eval.B_int rows);
    ]
  in
  (bindings, expected)

let y_of bindings =
  match List.assoc "y" bindings with
  | Eval.B_farr a -> Memory.to_float_array a
  | _ -> assert false

let run_spmv_ir ~parallel_mode ~simd_len rows =
  let bindings, expected = spmv_instance rows in
  let p = Outline.run spmv_kernel in
  let options =
    {
      Eval.default_options with
      Eval.num_teams = 3;
      num_threads = 64;
      parallel_mode;
      simd_len;
    }
  in
  let (_ : Gpusim.Device.report) = Eval.run ~cfg ~options ~bindings p in
  (y_of bindings, expected)

let test_eval_spmv_modes () =
  List.iter
    (fun (parallel_mode, simd_len) ->
      let got, expected = run_spmv_ir ~parallel_mode ~simd_len 100 in
      Array.iteri
        (fun r e ->
          if abs_float (got.(r) -. e) > 1e-9 then
            Alcotest.failf "row %d: got %f want %f" r got.(r) e)
        expected)
    [
      (`Auto, 8);
      (`Force Mode.Generic, 8);
      (`Force Mode.Spmd, 4);
      (`Force Mode.Generic, 1);
      (`Auto, 32);
    ]

let test_eval_scale_kernel () =
  let n = 256 in
  let space = Memory.space () in
  let src = Memory.of_float_array space (Array.init n float_of_int) in
  let dst = Memory.falloc space n in
  let p = Outline.run scale_kernel in
  let bindings =
    [
      ("src", Eval.B_farr src);
      ("dst", Eval.B_farr dst);
      ("n", Eval.B_int n);
      ("alpha", Eval.B_float 2.5);
    ]
  in
  let (_ : Gpusim.Device.report) =
    Eval.run ~cfg ~options:Eval.default_options ~bindings p
  in
  for idx = 0 to n - 1 do
    checkf "scaled" (2.5 *. float_of_int idx) (Memory.host_get dst idx)
  done

let test_eval_generic_kernel_auto () =
  (* the side-effecting kernel must still be correct under `Auto (which
     classifies it generic): marks written once per row despite 64
     threads. *)
  let n = 40 in
  let space = Memory.space () in
  let a = Memory.falloc space (n * 8) in
  let marks = Memory.falloc space n in
  let p = Outline.run generic_kernel in
  let bindings =
    [
      ("a", Eval.B_farr a);
      ("marks", Eval.B_farr marks);
      ("n", Eval.B_int n);
    ]
  in
  let (_ : Gpusim.Device.report) =
    Eval.run ~cfg
      ~options:{ Eval.default_options with Eval.num_teams = 2; simd_len = 8 }
      ~bindings p
  in
  for r = 0 to n - 1 do
    checkf "marked" 1.0 (Memory.host_get marks r)
  done;
  for i = 0 to (n * 8) - 1 do
    checkf "a filled" 2.0 (Memory.host_get a i)
  done

let test_eval_binding_errors () =
  let p = Outline.run scale_kernel in
  check_bool "missing binding" true
    (try
       ignore (Eval.run ~cfg ~options:Eval.default_options ~bindings:[] p);
       false
     with Eval.Error _ -> true)

let test_eval_costs_differ_by_mode () =
  (* generic mode must cost more than SPMD on the same IR kernel *)
  let time parallel_mode =
    let bindings, _ = spmv_instance 300 in
    let p = Outline.run spmv_kernel in
    let r =
      Eval.run ~cfg
        ~options:
          {
            Eval.default_options with
            Eval.num_teams = 2;
            num_threads = 64;
            parallel_mode;
            simd_len = 8;
          }
        ~bindings p
    in
    r.Gpusim.Device.time_cycles
  in
  check_bool "generic costs more" true
    (time (`Force Mode.Generic) > time (`Force Mode.Spmd))

(* --- new constructs: reduction, collapse, schedule -------------------- *)

(* spmv with a reduction clause instead of the atomic workaround *)
let spmv_reduce_kernel =
  Ir.kernel ~name:"spmv_reduce"
    ~params:
      [
        { Ir.pname = "row_ptr"; pty = Ir.P_iarray };
        { Ir.pname = "col"; pty = Ir.P_iarray };
        { Ir.pname = "values"; pty = Ir.P_farray };
        { Ir.pname = "x"; pty = Ir.P_farray };
        { Ir.pname = "y"; pty = Ir.P_farray };
        { Ir.pname = "n"; pty = Ir.P_int };
      ]
    [
      Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
        [
          Ir.Decl { name = "lo"; ty = Ir.Tint; init = Ir.Load_int ("row_ptr", Ir.v "r") };
          Ir.Decl
            { name = "hi"; ty = Ir.Tint; init = Ir.Load_int ("row_ptr", Ir.(v "r" + i 1)) };
          Ir.Decl { name = "dot"; ty = Ir.Tfloat; init = Ir.f 0.0 };
          Ir.simd_sum ~acc:"dot" ~var:"k" ~lo:(Ir.v "lo") ~hi:(Ir.v "hi")
            ~value:
              Ir.(
                Binop
                  (Mul, Load ("values", v "k"), Load ("x", Load_int ("col", v "k"))))
            [];
          Ir.Store ("y", Ir.v "r", Ir.v "dot");
        ];
    ]

let test_simd_sum_eval () =
  let bindings, expected = spmv_instance 120 in
  let p = Outline.run spmv_reduce_kernel in
  List.iter
    (fun (parallel_mode, simd_len) ->
      (* reset y *)
      (match List.assoc "y" bindings with
      | Eval.B_farr a -> Memory.fill a 0.0
      | _ -> assert false);
      let options =
        {
          Eval.default_options with
          Eval.num_teams = 3;
          num_threads = 64;
          parallel_mode;
          simd_len;
        }
      in
      let (_ : Gpusim.Device.report) = Eval.run ~cfg ~options ~bindings p in
      let got = y_of bindings in
      Array.iteri
        (fun r e ->
          if abs_float (got.(r) -. e) > 1e-9 then
            Alcotest.failf "reduce row %d: got %f want %f" r got.(r) e)
        expected)
    [ (`Force Mode.Spmd, 8); (`Force Mode.Generic, 8); (`Auto, 32); (`Auto, 1) ]

let test_simd_sum_outline_and_check () =
  (match Check.kernel spmv_reduce_kernel with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "check: %s"
        (String.concat "; " (List.map (fun (e : Check.error) -> e.Check.what) es)));
  let p = Outline.run spmv_reduce_kernel in
  let o = Outline.find p ~fn_id:1 in
  check_bool "reduction kind" true (o.Outline.kind = `Simd_sum);
  check_bool "acc not captured" true (not (List.mem "dot" o.Outline.captures));
  check_bool "value vars captured" true (List.mem "values" o.Outline.captures)

let test_simd_sum_check_rejects_int_acc () =
  let bad =
    mk_kernel
      [
        Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
          [
            Ir.Decl { name = "acc"; ty = Ir.Tint; init = Ir.i 0 };
            Ir.simd_sum ~acc:"acc" ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i 4)
              ~value:(Ir.f 1.0) [];
          ];
      ]
  in
  expect_error bad "must be a float"

let test_collapse_desugar () =
  let k =
    Ir.kernel ~name:"transpose"
      ~params:
        [
          { Ir.pname = "src"; pty = Ir.P_farray };
          { Ir.pname = "dst"; pty = Ir.P_farray };
          { Ir.pname = "ni"; pty = Ir.P_int };
          { Ir.pname = "nj"; pty = Ir.P_int };
        ]
      [
        Ir.collapsed_distribute_parallel_for
          ~vars:[ ("ii", Ir.v "ni"); ("jj", Ir.v "nj") ]
          [
            Ir.simd ~var:"z" ~lo:(Ir.i 0) ~hi:(Ir.i 1)
              [
                Ir.Store
                  ( "dst",
                    Ir.(Binop (Add, Binop (Mul, v "jj", v "ni"), v "ii")),
                    Ir.Load
                      ("src", Ir.(Binop (Add, Binop (Mul, v "ii", v "nj"), v "jj")))
                  );
              ];
          ];
      ]
  in
  (match Check.kernel k with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "collapse check: %s"
        (String.concat "; " (List.map (fun (e : Check.error) -> e.Check.what) es)));
  let ni = 13 and nj = 17 in
  let space = Memory.space () in
  let src =
    Memory.of_float_array space (Array.init (ni * nj) float_of_int)
  in
  let dst = Memory.falloc space (ni * nj) in
  let p = Outline.run k in
  let (_ : Gpusim.Device.report) =
    Eval.run ~cfg ~options:Eval.default_options
      ~bindings:
        [
          ("src", Eval.B_farr src);
          ("dst", Eval.B_farr dst);
          ("ni", Eval.B_int ni);
          ("nj", Eval.B_int nj);
        ]
      p
  in
  for ii = 0 to ni - 1 do
    for jj = 0 to nj - 1 do
      checkf "transposed"
        (float_of_int ((ii * nj) + jj))
        (Memory.host_get dst ((jj * ni) + ii))
    done
  done

let test_collapse_requires_two () =
  check_bool "one loop rejected" true
    (try
       ignore
         (Ir.collapsed_distribute_parallel_for ~vars:[ ("i", Ir.i 4) ] []);
       false
     with Invalid_argument _ -> true)

let test_schedule_printed_and_used () =
  let k =
    mk_kernel
      [
        Ir.distribute_parallel_for ~sched:(Ir.Sched_chunked 4) ~var:"r"
          ~lo:(Ir.i 0) ~hi:(Ir.v "n")
          [
            Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i 2)
              [ Ir.Store ("a", Ir.(Binop (Add, Binop (Mul, v "r", i 2), v "j")), Ir.f 1.0) ];
          ];
      ]
  in
  let p = Outline.run k in
  let src = Printer.kernel_to_string p.Outline.kernel in
  check_bool "schedule rendered" true
    (Astring_like.contains src "schedule(static,4)");
  let space = Memory.space () in
  let n = 50 in
  let a = Memory.falloc space (n * 2) in
  let (_ : Gpusim.Device.report) =
    Eval.run ~cfg ~options:Eval.default_options
      ~bindings:[ ("a", Eval.B_farr a); ("n", Eval.B_int n) ]
      p
  in
  for idx = 0 to (n * 2) - 1 do
    checkf "chunked coverage" 1.0 (Memory.host_get a idx)
  done

(* --- parser ---------------------------------------------------------------- *)

module Parse = Ompir.Parse

let spmv_source = {src|
// sparse matrix-vector product, as the paper writes it
kernel spmv(int* row_ptr, int* col, double* values, double* x, double* y, int n) {
  #pragma omp teams distribute parallel for
  for (r = 0; r < n; r++) {
    int lo = row_ptr[r];
    int hi = row_ptr[r + 1];
    #pragma omp simd
    for (k = lo; k < hi; k++) {
      #pragma omp atomic
      y[r] += values[k] * x[col[k]];
    }
  }
}
|src}

let test_parse_spmv_runs () =
  let k = Parse.kernel spmv_source in
  (match Check.kernel k with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "parsed spmv fails check: %s"
        (String.concat "; " (List.map (fun (e : Check.error) -> e.Check.what) es)));
  let bindings, expected = spmv_instance 90 in
  let p = Outline.run k in
  let (_ : Gpusim.Device.report) =
    Eval.run ~cfg
      ~options:{ Eval.default_options with Eval.simd_len = 8; parallel_mode = `Force Mode.Generic }
      ~bindings p
  in
  let got = y_of bindings in
  Array.iteri
    (fun r e ->
      if abs_float (got.(r) -. e) > 1e-9 then
        Alcotest.failf "parsed spmv row %d: got %f want %f" r got.(r) e)
    expected

let test_parse_reduction_and_clauses () =
  let src = {src|
kernel dots(double* a, double* out, int n) {
  #pragma omp teams distribute parallel for schedule(dynamic,2)
  for (r = 0; r < n; r++) {
    double total = 0.0;
    #pragma omp simd reduction(+:total)
    for (k = 0; k < 8; k++) {
      total += a[(r * 8) + k];
    }
    out[r] = total;
  }
}
|src}
  in
  let k = Parse.kernel src in
  (match Check.kernel k with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "reduction kernel must check");
  (* find the directive forms *)
  let found_dyn = ref false and found_red = ref false in
  ignore
    (Ir.fold_directives
       (fun () s ->
         match s with
         | Ir.Distribute_parallel_for d when d.Ir.sched = Ir.Sched_dynamic 2 ->
             found_dyn := true
         | Ir.Simd_sum { acc = "total"; _ } -> found_red := true
         | _ -> ())
       () k.Ir.body);
  (* Simd_sum is not visited as a directive by fold_directives? it is; but
     double-check by scanning the body shape *)
  (match k.Ir.body with
  | [ Ir.Distribute_parallel_for d ] ->
      check_bool "dynamic schedule parsed" true (d.Ir.sched = Ir.Sched_dynamic 2);
      (match d.Ir.body with
      | [ Ir.Decl _; Ir.Simd_sum { acc = "total"; _ }; Ir.Store _ ] -> ()
      | _ -> Alcotest.fail "unexpected parsed body shape")
  | _ -> Alcotest.fail "unexpected parsed kernel shape");
  ignore (!found_dyn, !found_red);
  (* run it *)
  let n = 24 in
  let space = Memory.space () in
  let a = Memory.of_float_array space (Array.init (n * 8) float_of_int) in
  let out = Memory.falloc space n in
  let (_ : Gpusim.Device.report) =
    Eval.run ~cfg ~options:Eval.default_options
      ~bindings:
        [ ("a", Eval.B_farr a); ("out", Eval.B_farr out); ("n", Eval.B_int n) ]
      (Outline.run k)
  in
  for r = 0 to n - 1 do
    let expected = float_of_int ((r * 8 * 8) + (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7)) in
    checkf "dot" expected (Memory.host_get out r)
  done

let test_parse_expressions () =
  let src = {src|
kernel e(double* a, int n, double alpha) {
  #pragma omp teams distribute parallel for
  for (r = 0; r < n; r++) {
    #pragma omp simd
    for (j = 0; j < 1; j++) {
      double t = sqrt(fabs(alpha)) + min(1.0, alpha) * 2.0;
      int idx = (r * 3 + 1) % n;
      a[idx] = t - (double)(idx == 0);
    }
  }
}
|src}
  in
  let k = Parse.kernel src in
  match Check.kernel k with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "expr kernel fails check: %s"
        (String.concat "; " (List.map (fun (e : Check.error) -> e.Check.what) es))

let test_parse_errors () =
  let expect_syntax src fragment =
    match Parse.kernel src with
    | exception Parse.Syntax_error { message; _ } ->
        check_bool fragment true (Astring_like.contains message fragment)
    | _ -> Alcotest.failf "expected a syntax error (%s)" fragment
  in
  expect_syntax "kernel f() { x = 1 }" "expected";
  expect_syntax "kernel f(float z) { }" "parameter type";
  expect_syntax
    "kernel f(int n) { #pragma omp simd reduction(+:t)
for (j = 0; j < 1; j++) { } }"
    "+=";
  expect_syntax "kernel f(int n) { for (i = 0; j < n; i++) { } }"
    "loop condition"

let test_parse_guarded () =
  let src = {src|
kernel g(double* marks, int n) {
  #pragma omp teams distribute parallel for
  for (r = 0; r < n; r++) {
    guarded {
      marks[r] = 1.0;
    }
    #pragma omp simd
    for (j = 0; j < 4; j++) {
      marks[r] = marks[r];
    }
  }
}
|src}
  in
  let k = Parse.kernel src in
  let guards =
    Ir.fold_directives (fun acc _ -> acc) 0 k.Ir.body |> fun _ ->
    let rec count stmts =
      List.fold_left
        (fun acc s ->
          match s with
          | Ir.Guarded _ -> acc + 1
          | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
              acc + count d.Ir.body
          | _ -> acc)
        0 stmts
    in
    count k.Ir.body
  in
  check_int "one guarded block" 1 guards

(* --- constant folding ---------------------------------------------------- *)

module Fold = Ompir.Fold

let test_fold_exprs () =
  let cases =
    [
      (Ir.(i 2 + i 3), Ir.Int_lit 5);
      (Ir.(i 10 / i 3), Ir.Int_lit 3);
      (Ir.(Binop (Mod, i 10, i 3)), Ir.Int_lit 1);
      (Ir.(f 1.5 * f 2.0), Ir.Float_lit 3.0);
      (Ir.(v "x" + i 0), Ir.Var "x");
      (Ir.(i 0 + v "x"), Ir.Var "x");
      (Ir.(v "x" * i 1), Ir.Var "x");
      (Ir.(v "x" * i 0), Ir.Int_lit 0);
      (Ir.(Unop (Neg, i 4)), Ir.Int_lit (-4));
      (Ir.(Unop (Sqrt, f 9.0)), Ir.Float_lit 3.0);
      (Ir.(Binop (Max, i 3, i 7)), Ir.Int_lit 7);
      (* nested folding *)
      (Ir.((i 1 + i 1) * (v "y" + i 0)), Ir.(i 2 * v "y"));
    ]
  in
  List.iter
    (fun (input, expected) ->
      check_bool "fold" true (Fold.expr input = expected))
    cases

let test_fold_keeps_effectful_mul_zero () =
  (* a load must survive x*0 (bounds trap) *)
  let e = Ir.(Binop (Mul, Load ("a", v "k"), i 0)) in
  check_bool "load kept" true (Fold.expr e = e)

let test_fold_division_by_zero_kept () =
  let e = Ir.(i 1 / i 0) in
  check_bool "div by zero kept" true (Fold.expr e = e)

let test_fold_stmts () =
  let k =
    mk_kernel
      [
        Ir.If (Ir.(i 1 < i 2), [ Ir.Store ("a", Ir.i 0, Ir.f 1.0) ], []);
        Ir.If (Ir.(i 2 < i 1), [ Ir.Store ("a", Ir.i 1, Ir.f 1.0) ], []);
        Ir.For { var = "z"; lo = Ir.i 5; hi = Ir.i 5; body = [] };
        Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.i 0) [];
      ]
  in
  match (Fold.kernel k).Ir.body with
  | [ Ir.Store ("a", Ir.Int_lit 0, Ir.Float_lit 1.0) ] -> ()
  | body -> Alcotest.failf "unexpected folded body (%d stmts)" (List.length body)

let test_fold_preserves_semantics () =
  (* folded and unfolded spmv agree *)
  let bindings, expected = spmv_instance 80 in
  let folded = Fold.kernel spmv_kernel in
  let p = Outline.run folded in
  let (_ : Gpusim.Device.report) =
    Eval.run ~cfg ~options:Eval.default_options ~bindings p
  in
  Array.iteri
    (fun r e ->
      let got = y_of bindings in
      if abs_float (got.(r) -. e) > 1e-9 then Alcotest.failf "row %d" r)
    expected

(* --- passes: dce / unroll / subst ---------------------------------------- *)

module Passes = Ompir.Passes
module Subst = Ompir.Subst

let test_subst () =
  let body =
    [
      Ir.Decl { name = "t"; ty = Ir.Tint; init = Ir.(v "j" + i 1) };
      Ir.Store ("a", Ir.v "t", Ir.Unop (Ir.To_float, Ir.v "j"));
      Ir.For { var = "j"; lo = Ir.i 0; hi = Ir.i 2;
               body = [ Ir.Store ("a", Ir.v "j", Ir.f 0.0) ] };
    ]
  in
  match Subst.stmts ~var:"j" ~by:(Ir.i 7) body with
  | [
      Ir.Decl { init = Ir.Binop (Ir.Add, Ir.Int_lit 7, Ir.Int_lit 1); _ };
      Ir.Store (_, _, Ir.Unop (Ir.To_float, Ir.Int_lit 7));
      Ir.For { body = [ Ir.Store (_, Ir.Var "j", _) ]; _ };
    ] ->
      () (* the inner for rebinds j: untouched *)
  | _ -> Alcotest.fail "substitution shape"

let test_subst_shadowing_decl () =
  let body =
    [
      Ir.Assign ("x", Ir.v "j");
      Ir.Decl { name = "j"; ty = Ir.Tint; init = Ir.i 0 };
      Ir.Assign ("x", Ir.v "j");
    ]
  in
  match Subst.stmts ~var:"j" ~by:(Ir.i 5) body with
  | [ Ir.Assign (_, Ir.Int_lit 5); Ir.Decl _; Ir.Assign (_, Ir.Var "j") ] -> ()
  | _ -> Alcotest.fail "decl shadowing"

let test_dce () =
  let k =
    mk_kernel
      [
        Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
          [
            Ir.Decl { name = "dead"; ty = Ir.Tint; init = Ir.i 1 };
            Ir.Decl { name = "live"; ty = Ir.Tint; init = Ir.i 2 };
            (* a decl whose init loads must survive even if unread *)
            Ir.Decl { name = "trapping"; ty = Ir.Tfloat; init = Ir.Load ("a", Ir.i 0) };
            Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i 4)
              [ Ir.Store ("a", Ir.(v "r" + v "j" + v "live"), Ir.f 1.0) ];
          ];
      ]
  in
  let k' = Passes.dce.Passes.transform k in
  match k'.Ir.body with
  | [ Ir.Distribute_parallel_for d ] -> (
      match d.Ir.body with
      | [ Ir.Decl { name = "live"; _ }; Ir.Decl { name = "trapping"; _ }; Ir.Simd _ ] -> ()
      | body -> Alcotest.failf "dce left %d stmts" (List.length body))
  | _ -> Alcotest.fail "dce kernel shape"

let test_unroll () =
  let k =
    mk_kernel
      [
        Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
          [
            Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i 4)
              [
                Ir.Decl { name = "t"; ty = Ir.Tint; init = Ir.(v "r" * i 4 + v "j") };
                Ir.Store ("a", Ir.v "t", Ir.Unop (Ir.To_float, Ir.v "j"));
              ];
          ];
      ]
  in
  let k' = (Passes.unroll ()).Passes.transform k in
  (* still checks (fresh decl names per replica) *)
  (match Check.kernel k' with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "unrolled kernel fails check: %s"
        (String.concat "; " (List.map (fun (e : Check.error) -> e.Check.what) es)));
  (match k'.Ir.body with
  | [ Ir.Distribute_parallel_for d ] ->
      check_int "8 replica stmts" 8 (List.length d.Ir.body)
  | _ -> Alcotest.fail "unroll shape");
  (* and computes the same thing *)
  let n = 20 in
  let run kernel =
    let space = Memory.space () in
    let a = Memory.falloc space (n * 4) in
    let (_ : Gpusim.Device.report) =
      Eval.run ~cfg ~options:Eval.default_options
        ~bindings:[ ("a", Eval.B_farr a); ("n", Eval.B_int n) ]
        (Outline.run kernel)
    in
    Memory.to_float_array a
  in
  Alcotest.(check (array (float 1e-9))) "same results" (run k) (run k')

let test_unroll_skips_atomics_and_big_trips () =
  let with_atomic =
    mk_kernel
      [
        Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
          [
            Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i 2)
              [ Ir.Atomic_add ("a", Ir.i 0, Ir.f 1.0) ];
          ];
      ]
  in
  let k' = (Passes.unroll ()).Passes.transform with_atomic in
  check_bool "atomic body kept as a loop" true
    (Ir.fold_directives
       (fun acc s -> acc || match s with Ir.Simd _ -> true | _ -> false)
       false k'.Ir.body);
  let big =
    mk_kernel
      [
        Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
          [ Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i 100) [] ];
      ]
  in
  let k'' = (Passes.unroll ()).Passes.transform big in
  check_bool "big trip kept as a loop" true
    (Ir.fold_directives
       (fun acc s -> acc || match s with Ir.Simd _ -> true | _ -> false)
       false k''.Ir.body)

let test_run_verified () =
  match Passes.run_verified Passes.default_pipeline spmv_kernel with
  | Ok _ -> ()
  | Error (name, _) -> Alcotest.failf "pipeline broke at %s" name

(* Random kernels from the printable subset, for the printer ↔ parser
   round-trip property.  Purely syntactic — the kernels are never run —
   but literals stay quarter-valued and non-negative so their decimal
   rendering re-reads to the same bits, and array loads/stores use the
   declared parameter arrays so the parser can re-type them. *)
let roundtrip_arbitrary =
  let open QCheck in
  let int_leaf st =
    List.nth
      [ Ir.Int_lit (Gen.int_range 0 9 st); Ir.Var "n"; Ir.Var "i"; Ir.Var "j" ]
      (Gen.int_range 0 3 st)
  in
  let rec gen_iexpr depth st =
    if depth = 0 then int_leaf st
    else
      match Gen.int_range 0 4 st with
      | 0 -> int_leaf st
      | 1 -> Ir.Binop (Ir.Add, gen_iexpr (depth - 1) st, gen_iexpr (depth - 1) st)
      | 2 -> Ir.Binop (Ir.Mul, gen_iexpr (depth - 1) st, gen_iexpr (depth - 1) st)
      | 3 -> Ir.Binop (Ir.Mod, gen_iexpr (depth - 1) st, Ir.Var "n")
      | _ -> Ir.Binop (Ir.Min, gen_iexpr (depth - 1) st, gen_iexpr (depth - 1) st)
  in
  let float_leaf st =
    match Gen.int_range 0 2 st with
    | 0 -> Ir.Float_lit (float_of_int (Gen.int_range 0 12 st) /. 4.0)
    | 1 -> Ir.Var "x"
    | _ -> Ir.Load ("src", Ir.Binop (Ir.Mod, Ir.Var "i", Ir.Var "n"))
  in
  let rec gen_fexpr depth st =
    if depth = 0 then float_leaf st
    else
      match Gen.int_range 0 5 st with
      | 0 -> float_leaf st
      | 1 -> Ir.Binop (Ir.Add, gen_fexpr (depth - 1) st, gen_fexpr (depth - 1) st)
      | 2 -> Ir.Binop (Ir.Mul, gen_fexpr (depth - 1) st, gen_fexpr (depth - 1) st)
      | 3 -> Ir.Unop (Ir.Abs, gen_fexpr (depth - 1) st)
      | 4 -> Ir.Unop (Ir.Sqrt, gen_fexpr (depth - 1) st)
      | _ -> Ir.Binop (Ir.Max, gen_fexpr (depth - 1) st, gen_fexpr (depth - 1) st)
  in
  let gen_cond st =
    Ir.Binop
      ( List.nth [ Ir.Lt; Ir.Le; Ir.Eq; Ir.Ne ] (Gen.int_range 0 3 st),
        gen_iexpr 1 st,
        gen_iexpr 1 st )
  in
  let gen_sched st =
    List.nth
      [ Ir.Sched_static; Ir.Sched_chunked 4; Ir.Sched_dynamic 2 ]
      (Gen.int_range 0 2 st)
  in
  let rec gen_stmt depth st =
    match Gen.int_range 0 (if depth = 0 then 4 else 9) st with
    | 0 ->
        Ir.Decl
          {
            name = Printf.sprintf "d%d" (Gen.int_range 0 3 st);
            ty = Ir.Tfloat;
            init = gen_fexpr 2 st;
          }
    | 1 -> Ir.Store ("out", gen_iexpr 2 st, gen_fexpr 2 st)
    | 2 -> Ir.Atomic_add ("out", gen_iexpr 1 st, gen_fexpr 1 st)
    | 3 -> Ir.Assign ("t", gen_fexpr 2 st)
    | 4 -> Ir.Sync
    | 5 ->
        Ir.If
          ( gen_cond st,
            gen_block (depth - 1) st,
            if Gen.bool st then gen_block (depth - 1) st else [] )
    | 6 ->
        Ir.For
          {
            var = "w";
            lo = Ir.Int_lit 0;
            hi = gen_iexpr 1 st;
            body = gen_block (depth - 1) st;
          }
    | 7 ->
        Ir.simd ~var:"j" ~lo:(Ir.Int_lit 0) ~hi:(Ir.Var "n")
          (gen_block (depth - 1) st)
    | 8 ->
        Ir.simd_sum ~acc:"t" ~var:"j" ~lo:(Ir.Int_lit 0) ~hi:(Ir.Var "n")
          ~value:(gen_fexpr 1 st)
          (gen_block (depth - 1) st)
    | _ -> Ir.Guarded (gen_block (depth - 1) st)
  and gen_block depth st =
    let k = Gen.int_range 1 3 st in
    List.init k (fun _ -> gen_stmt depth st)
  in
  let gen_kernel st =
    let body =
      [
        Ir.Decl { name = "t"; ty = Ir.Tfloat; init = Ir.Float_lit 0.0 };
        Ir.distribute_parallel_for ~sched:(gen_sched st) ~var:"i"
          ~lo:(Ir.Int_lit 0) ~hi:(Ir.Var "n") (gen_block 2 st);
      ]
    in
    Ir.kernel ~name:"roundtrip"
      ~params:
        [
          { Ir.pname = "src"; pty = Ir.P_farray };
          { Ir.pname = "out"; pty = Ir.P_farray };
          { Ir.pname = "n"; pty = Ir.P_int };
          { Ir.pname = "x"; pty = Ir.P_float };
        ]
      body
  in
  QCheck.make
    ~print:(fun k -> Ompir.Printer.kernel_to_string k)
    gen_kernel

let qcheck_cases =
  let open QCheck in
  (* random well-typed float expression over a small environment; Div/Mod
     denominators are nonzero literals so evaluation cannot trap *)
  let rec gen_fexpr depth st =
    if depth = 0 then
      match Gen.int_range 0 2 st with
      | 0 -> Ir.Float_lit (float_of_int (Gen.int_range (-8) 8 st) /. 4.0)
      | 1 -> Ir.Var "x"
      | _ -> Ir.Var "y"
    else
      match Gen.int_range 0 5 st with
      | 0 ->
          Ir.Binop (Ir.Add, gen_fexpr (depth - 1) st, gen_fexpr (depth - 1) st)
      | 1 ->
          Ir.Binop (Ir.Sub, gen_fexpr (depth - 1) st, gen_fexpr (depth - 1) st)
      | 2 ->
          Ir.Binop (Ir.Mul, gen_fexpr (depth - 1) st, gen_fexpr (depth - 1) st)
      | 3 ->
          Ir.Binop
            ( Ir.Div,
              gen_fexpr (depth - 1) st,
              Ir.Float_lit (float_of_int (Gen.int_range 1 4 st)) )
      | 4 -> Ir.Unop (Ir.Abs, gen_fexpr (depth - 1) st)
      | _ ->
          Ir.Binop (Ir.Max, gen_fexpr (depth - 1) st, gen_fexpr (depth - 1) st)
  in
  let fexpr_arbitrary =
    QCheck.make
      ~print:(fun e -> Format.asprintf "%a" Ompir.Printer.pp_expr e)
      (gen_fexpr 4)
  in
  [
    Test.make ~name:"fold preserves expression values" ~count:300
      fexpr_arbitrary
      (fun e ->
        (* evaluate folded and unfolded via the host interpreter on a
           one-store kernel *)
        let mk expr =
          Ir.kernel ~name:"probe"
            ~params:
              [
                { Ir.pname = "out"; pty = Ir.P_farray };
                { Ir.pname = "x"; pty = Ir.P_float };
                { Ir.pname = "y"; pty = Ir.P_float };
              ]
            [ Ir.Store ("out", Ir.Int_lit 0, expr) ]
        in
        let eval_with kernel =
          let space = Memory.space () in
          let out = Memory.falloc space 1 in
          Hosteval.run
            ~bindings:
              [
                ("out", Eval.B_farr out);
                ("x", Eval.B_float 1.25);
                ("y", Eval.B_float (-0.5));
              ]
            kernel;
          Memory.host_get out 0
        in
        let plain = eval_with (mk e) in
        let folded = eval_with (mk (Ompir.Fold.expr e)) in
        plain = folded
        || (Float.is_nan plain && Float.is_nan folded)
        || abs_float (plain -. folded)
           <= 1e-9 *. Float.max 1.0 (abs_float plain));
    Test.make ~name:"IR spmv matches reference for random sizes" ~count:10
      (pair (int_range 8 120) (int_range 0 4))
      (fun (rows, gs_idx) ->
        let simd_len = List.nth [ 1; 2; 8; 16; 32 ] gs_idx in
        let got, expected = run_spmv_ir ~parallel_mode:`Auto ~simd_len rows in
        Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) got expected);
    Test.make ~name:"printer/parser round-trip" ~count:200 roundtrip_arbitrary
      (fun k -> Ompir.Parse.kernel (Ompir.Printer.kernel_to_string k) = k);
    Test.make ~name:"digest survives printer/parser round-trip" ~count:200
      roundtrip_arbitrary
      (fun k ->
        Ompir.Kdigest.hex (Ompir.Parse.kernel (Ompir.Printer.kernel_to_string k))
        = Ompir.Kdigest.hex k);
  ]

let suite =
  [
    ( "ompir.check",
      [
        Alcotest.test_case "accepts good kernels" `Quick test_check_accepts_good;
        Alcotest.test_case "unbound var" `Quick test_check_unbound_var;
        Alcotest.test_case "type mismatch" `Quick test_check_type_mismatch;
        Alcotest.test_case "simd position" `Quick test_check_simd_position;
        Alcotest.test_case "captured assign in simd" `Quick
          test_check_simd_captured_assign;
        Alcotest.test_case "loop var assign" `Quick test_check_loop_var_assign;
        Alcotest.test_case "array kind" `Quick test_check_array_kind;
      ] );
    ( "ompir.outline",
      [
        Alcotest.test_case "free vars" `Quick test_free_vars;
        Alcotest.test_case "ids and captures" `Quick test_outline_ids_and_captures;
        Alcotest.test_case "annotates ast" `Quick test_outline_annotates_ast;
      ] );
    ( "ompir.globalize",
      [
        Alcotest.test_case "spmv locals" `Quick test_globalize_spmv;
        Alcotest.test_case "none needed" `Quick test_globalize_none_needed;
      ] );
    ("ompir.spmdize", [ Alcotest.test_case "tight nesting" `Quick test_spmdize ]);
    ("ompir.printer", [ Alcotest.test_case "renders pragmas" `Quick test_printer ]);
    ( "ompir.extensions",
      [
        Alcotest.test_case "simd reduction eval" `Quick test_simd_sum_eval;
        Alcotest.test_case "simd reduction outline/check" `Quick
          test_simd_sum_outline_and_check;
        Alcotest.test_case "reduction acc type" `Quick
          test_simd_sum_check_rejects_int_acc;
        Alcotest.test_case "collapse desugar" `Quick test_collapse_desugar;
        Alcotest.test_case "collapse arity" `Quick test_collapse_requires_two;
        Alcotest.test_case "schedule clause" `Quick test_schedule_printed_and_used;
      ] );
    ( "ompir.parse",
      [
        Alcotest.test_case "spmv source runs" `Quick test_parse_spmv_runs;
        Alcotest.test_case "reduction and clauses" `Quick
          test_parse_reduction_and_clauses;
        Alcotest.test_case "expressions" `Quick test_parse_expressions;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "guarded" `Quick test_parse_guarded;
      ] );
    ( "ompir.fold",
      [
        Alcotest.test_case "expressions" `Quick test_fold_exprs;
        Alcotest.test_case "effectful mul zero" `Quick test_fold_keeps_effectful_mul_zero;
        Alcotest.test_case "div by zero kept" `Quick test_fold_division_by_zero_kept;
        Alcotest.test_case "statements" `Quick test_fold_stmts;
        Alcotest.test_case "semantics preserved" `Quick test_fold_preserves_semantics;
      ] );
    ( "ompir.hosteval",
      [
        Alcotest.test_case "basics" `Quick test_hosteval_basics;
        Alcotest.test_case "binding errors" `Quick test_hosteval_binding_errors;
      ] );
    ( "ompir.eval",
      [
        Alcotest.test_case "spmv all modes" `Quick test_eval_spmv_modes;
        Alcotest.test_case "scale kernel" `Quick test_eval_scale_kernel;
        Alcotest.test_case "generic auto" `Quick test_eval_generic_kernel_auto;
        Alcotest.test_case "binding errors" `Quick test_eval_binding_errors;
        Alcotest.test_case "mode cost ordering" `Quick test_eval_costs_differ_by_mode;
      ] );
    ( "ompir.passes",
      [
        Alcotest.test_case "substitution" `Quick test_subst;
        Alcotest.test_case "subst shadowing" `Quick test_subst_shadowing_decl;
        Alcotest.test_case "dce" `Quick test_dce;
        Alcotest.test_case "unroll" `Quick test_unroll;
        Alcotest.test_case "unroll guards" `Quick
          test_unroll_skips_atomics_and_big_trips;
        Alcotest.test_case "run_verified" `Quick test_run_verified;
      ] );
    ("ompir.properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
  ]
