(* Integration tests: every workload, in its two-level and three-level
   forms, must reproduce its sequential reference exactly. *)

module Config = Gpusim.Config
module Mode = Omprt.Mode
module Harness = Workloads.Harness
module Spmv = Workloads.Spmv
module Su3 = Workloads.Su3
module Ideal = Workloads.Ideal
module Laplace3d = Workloads.Laplace3d
module Muram = Workloads.Muram

let cfg = Config.small
let check_bool = Alcotest.check Alcotest.bool

let ok name = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" name msg

let small_spmv profile =
  Spmv.generate
    { rows = 200; cols = 200; profile; band = 40; seed = 11 }

let spmv_modes =
  [
    ("spmd/8", Harness.spmd_simd ~group_size:8);
    ("generic/8", Harness.generic_simd ~group_size:8);
    ("generic/32", Harness.generic_simd ~group_size:32);
    ("spmd/1", Harness.spmd_simd ~group_size:1);
  ]

let test_spmv_two_level () =
  let t = small_spmv (Spmv.Banded { mean = 12; spread = 8 }) in
  let r = Spmv.run_two_level ~cfg ~num_teams:8 ~threads:32 t in
  ok "two-level" (Spmv.verify t r.Harness.output)

let test_spmv_simd_modes () =
  let t = small_spmv (Spmv.Banded { mean = 12; spread = 8 }) in
  List.iter
    (fun (name, mode3) ->
      let r = Spmv.run_simd ~cfg ~num_teams:8 ~threads:64 ~mode3 t in
      ok name (Spmv.verify t r.Harness.output))
    spmv_modes

let test_spmv_profiles () =
  List.iter
    (fun profile ->
      let t = small_spmv profile in
      let r =
        Spmv.run_simd ~cfg ~num_teams:4 ~threads:64
          ~mode3:(Harness.generic_simd ~group_size:8) t
      in
      ok "profile" (Spmv.verify t r.Harness.output))
    [
      Spmv.Uniform 7;
      Spmv.Banded { mean = 10; spread = 10 };
      Spmv.Power_law { max_nnz = 64; s = 1.3 };
    ]

let test_spmv_empty_rows () =
  (* Banded with spread = mean can generate zero-length rows. *)
  let t = small_spmv (Spmv.Banded { mean = 4; spread = 4 }) in
  check_bool "has an empty row" true
    (Array.exists (fun l -> l = 0) (Spmv.row_lengths t));
  let r =
    Spmv.run_simd ~cfg ~num_teams:4 ~threads:64
      ~mode3:(Harness.generic_simd ~group_size:8) t
  in
  ok "empty rows" (Spmv.verify t r.Harness.output)

let test_spmv_reduction_variant () =
  let t = small_spmv (Spmv.Banded { mean = 12; spread = 8 }) in
  List.iter
    (fun (name, mode3) ->
      let r = Spmv.run_simd_reduction ~cfg ~num_teams:8 ~threads:64 ~mode3 t in
      ok name (Spmv.verify t r.Harness.output))
    spmv_modes

let test_spmv_deterministic_generation () =
  let a = small_spmv (Spmv.Power_law { max_nnz = 32; s = 1.2 }) in
  let b = small_spmv (Spmv.Power_law { max_nnz = 32; s = 1.2 }) in
  Alcotest.(check (array int)) "same lengths" (Spmv.row_lengths a)
    (Spmv.row_lengths b);
  Alcotest.(check int) "same nnz" (Spmv.nnz a) (Spmv.nnz b)

let test_su3 () =
  let t = Su3.generate { sites = 96; seed = 7 } in
  let r = Su3.run_two_level ~cfg ~num_teams:4 ~threads:64 t in
  ok "su3 baseline" (Su3.verify t r.Harness.output);
  List.iter
    (fun gs ->
      List.iter
        (fun mk ->
          let r =
            Su3.run ~cfg ~num_teams:4 ~threads:64 ~mode3:(mk ~group_size:gs) t
          in
          ok (Printf.sprintf "su3 gs=%d" gs) (Su3.verify t r.Harness.output))
        [ Harness.spmd_simd; Harness.generic_simd ])
    [ 2; 4; 8 ]

let test_ideal () =
  let t = Ideal.generate { rows = 128; inner = 32; flops_per_elem = 8; seed = 9 } in
  let r = Ideal.run_two_level ~cfg ~num_teams:4 ~threads:64 t in
  ok "ideal baseline" (Ideal.verify t r.Harness.output);
  let r =
    Ideal.run ~cfg ~num_teams:4 ~threads:64
      ~mode3:(Harness.generic_simd ~group_size:32) t
  in
  ok "ideal simd" (Ideal.verify t r.Harness.output)

let test_laplace3d () =
  let t = Laplace3d.generate { n = 10; seed = 13 } in
  let r = Laplace3d.run_no_simd ~cfg ~num_teams:4 ~threads:64 t in
  ok "laplace no-simd" (Laplace3d.verify t r.Harness.output);
  List.iter
    (fun mode3 ->
      let r = Laplace3d.run ~cfg ~num_teams:4 ~threads:64 ~mode3 t in
      ok "laplace simd" (Laplace3d.verify t r.Harness.output))
    [ Harness.spmd_simd ~group_size:8; Harness.generic_simd ~group_size:8 ]

let test_muram_transpose () =
  let t = Muram.generate { ni = 10; nj = 12; nk = 14; seed = 15 } in
  List.iter
    (fun mode3 ->
      let r = Muram.run_transpose ~cfg ~num_teams:4 ~threads:64 ~mode3 t in
      ok "transpose" (Muram.verify_transpose t r.Harness.output))
    [
      Harness.spmd_simd ~group_size:1;
      Harness.spmd_simd ~group_size:8;
      Harness.generic_simd ~group_size:8;
    ]

let test_muram_interpol () =
  let t = Muram.generate { ni = 10; nj = 12; nk = 14; seed = 17 } in
  List.iter
    (fun mode3 ->
      let r = Muram.run_interpol ~cfg ~num_teams:4 ~threads:64 ~mode3 t in
      ok "interpol" (Muram.verify_interpol t r.Harness.output))
    [
      Harness.spmd_simd ~group_size:1;
      Harness.spmd_simd ~group_size:8;
      Harness.generic_simd ~group_size:8;
    ]

let test_amd_mode_workloads () =
  (* Every workload must stay correct on the no-warp-barrier device. *)
  let acfg = Config.amd_like in
  let t = small_spmv (Spmv.Banded { mean = 8; spread = 6 }) in
  let r =
    Spmv.run_simd ~cfg:acfg ~num_teams:4 ~threads:64
      ~mode3:(Harness.generic_simd ~group_size:8) t
  in
  ok "spmv amd" (Spmv.verify t r.Harness.output);
  let lt = Laplace3d.generate { n = 8; seed = 19 } in
  let lr =
    Laplace3d.run ~cfg:acfg ~num_teams:2 ~threads:64
      ~mode3:(Harness.generic_simd ~group_size:32) lt
  in
  ok "laplace amd" (Laplace3d.verify lt lr.Harness.output)

let test_harness_verify () =
  check_bool "accepts equal" true
    (Harness.verify_close ~expected:[| 1.0; 2.0 |] [| 1.0; 2.0 |] = Ok ());
  check_bool "rejects different" true
    (Result.is_error (Harness.verify_close ~expected:[| 1.0 |] [| 1.5 |]));
  check_bool "rejects length" true
    (Result.is_error (Harness.verify_close ~expected:[| 1.0 |] [| 1.0; 2.0 |]))

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"spmv correct on random instances" ~count:15
      (triple (int_range 10 80) (int_range 1 16) (int_range 0 3))
      (fun (rows, mean, gs_idx) ->
        let gs = List.nth [ 1; 2; 8; 32 ] gs_idx in
        let t =
          Spmv.generate
            {
              rows;
              cols = rows;
              profile = Spmv.Banded { mean; spread = mean / 2 };
              band = max 1 (rows / 4);
              seed = rows + mean;
            }
        in
        let r =
          Spmv.run_simd ~cfg ~num_teams:2 ~threads:64
            ~mode3:(Harness.generic_simd ~group_size:gs) t
        in
        Spmv.verify t r.Harness.output = Ok ());
    Test.make ~name:"two-level and simd agree" ~count:10
      (int_range 10 60)
      (fun rows ->
        let t =
          Spmv.generate
            {
              rows;
              cols = rows;
              profile = Spmv.Uniform 9;
              band = max 1 (rows / 3);
              seed = rows;
            }
        in
        let a = Spmv.run_two_level ~cfg ~num_teams:2 ~threads:32 t in
        let av = Array.copy a.Harness.output in
        let b =
          Spmv.run_simd ~cfg ~num_teams:2 ~threads:64
            ~mode3:(Harness.spmd_simd ~group_size:4) t
        in
        Array.for_all2 (fun x y -> abs_float (x -. y) < 1e-6) av b.Harness.output);
  ]

let suite =
  [
    ( "workloads.spmv",
      [
        Alcotest.test_case "two-level" `Quick test_spmv_two_level;
        Alcotest.test_case "simd modes" `Quick test_spmv_simd_modes;
        Alcotest.test_case "profiles" `Quick test_spmv_profiles;
        Alcotest.test_case "empty rows" `Quick test_spmv_empty_rows;
        Alcotest.test_case "reduction variant" `Quick test_spmv_reduction_variant;
        Alcotest.test_case "deterministic generation" `Quick
          test_spmv_deterministic_generation;
      ] );
    ( "workloads.kernels",
      [
        Alcotest.test_case "su3" `Quick test_su3;
        Alcotest.test_case "ideal" `Quick test_ideal;
        Alcotest.test_case "laplace3d" `Quick test_laplace3d;
        Alcotest.test_case "muram transpose" `Quick test_muram_transpose;
        Alcotest.test_case "muram interpol" `Quick test_muram_interpol;
        Alcotest.test_case "amd mode" `Quick test_amd_mode_workloads;
        Alcotest.test_case "harness verify" `Quick test_harness_verify;
      ] );
    ("workloads.properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
  ]
