(* Tests for the public OpenMP frontend: directive facade, clauses, the
   host data environment, and the IR offload pipeline. *)

module Memory = Gpusim.Memory
module Mode = Omprt.Mode
module Clause = Openmp.Clause
module Data_env = Openmp.Data_env
module Omp = Openmp.Omp
module Offload = Openmp.Offload
module Ir = Ompir.Ir

let cfg = Gpusim.Config.small
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- clauses ---------------------------------------------------------- *)

let test_clause_defaults () =
  let params, parallel_mode, simdlen = Clause.resolve ~cfg Clause.none in
  check_int "teams default 2/SM" (2 * cfg.Gpusim.Config.num_sms)
    params.Omprt.Team.num_teams;
  check_int "threads default" 128 params.Omprt.Team.num_threads;
  check_bool "spmd default" true (params.Omprt.Team.teams_mode = Mode.Spmd);
  check_bool "parallel spmd" true (parallel_mode = Mode.Spmd);
  check_int "simdlen 1" 1 simdlen

let test_clause_composition () =
  let clauses =
    Clause.(
      none |> num_teams 7 |> num_threads 64 |> simdlen 8
      |> parallel_mode Mode.Generic |> sharing_bytes 1024)
  in
  let params, parallel_mode, simdlen = Clause.resolve ~cfg clauses in
  check_int "teams" 7 params.Omprt.Team.num_teams;
  check_int "threads" 64 params.Omprt.Team.num_threads;
  check_int "simdlen" 8 simdlen;
  check_int "sharing" 1024 params.Omprt.Team.sharing_bytes;
  check_bool "generic parallel" true (parallel_mode = Mode.Generic)

let test_clause_validation () =
  check_bool "bad simdlen" true
    (try
       ignore (Clause.resolve ~cfg Clause.(none |> simdlen 5));
       false
     with Invalid_argument _ -> true);
  check_bool "bad teams" true
    (try
       ignore (Clause.resolve ~cfg Clause.(none |> num_teams 0));
       false
     with Invalid_argument _ -> true)

(* --- directive facade -------------------------------------------------- *)

let clauses3 ~simdlen:n ~mode =
  Clause.(none |> num_teams 4 |> num_threads 64 |> simdlen n |> parallel_mode mode)

let test_facade_three_level () =
  let space = Memory.space () in
  let rows = 37 and len = 19 in
  let out = Memory.falloc space (rows * len) in
  List.iter
    (fun (gs, mode) ->
      Memory.fill out 0.0;
      let (_ : Gpusim.Device.report) =
        Omp.target_teams ~cfg ~clauses:(clauses3 ~simdlen:gs ~mode) (fun ctx ->
            Omp.distribute_parallel_for ctx ~trip:rows (fun r ->
                Omp.simd ctx ~trip:len (fun j ->
                    Memory.fset out ctx.Omprt.Team.th
                      ((r * len) + j)
                      (float_of_int ((r * len) + j)))))
      in
      for idx = 0 to (rows * len) - 1 do
        checkf "identity" (float_of_int idx) (Memory.host_get out idx)
      done)
    [ (8, Mode.Generic); (4, Mode.Spmd); (1, Mode.Spmd); (32, Mode.Generic) ]

let test_facade_two_level () =
  (* teams distribute + inner parallel for: the paper's baseline shape *)
  let space = Memory.space () in
  let rows = 10 and len = 33 in
  let out = Memory.falloc space (rows * len) in
  let (_ : Gpusim.Device.report) =
    Omp.target_teams_distribute ~cfg
      ~clauses:Clause.(none |> num_teams 3 |> num_threads 32)
      ~trip:rows
      (fun ctx r ->
        Omp.parallel_for ctx ~trip:len (fun j ->
            Memory.fset out ctx.Omprt.Team.th
              ((r * len) + j)
              (float_of_int r)))
  in
  for idx = 0 to (rows * len) - 1 do
    checkf "row id" (float_of_int (idx / len)) (Memory.host_get out idx)
  done

let test_facade_queries () =
  let seen_threads = ref (-1) and seen_width = ref (-1) in
  let (_ : Gpusim.Device.report) =
    Omp.target_teams ~cfg ~clauses:(clauses3 ~simdlen:8 ~mode:Mode.Spmd)
      (fun ctx ->
        if Omp.team_num ctx = 0 && Omp.thread_num ctx = 0 then begin
          seen_threads := Omp.num_threads ctx;
          seen_width := Omp.simd_width ctx
        end)
  in
  check_int "omp threads = groups" 8 !seen_threads;
  check_int "simd width" 8 !seen_width

let test_facade_simd_sum () =
  let total = ref 0.0 in
  let (_ : Gpusim.Device.report) =
    Omp.target_teams ~cfg
      ~clauses:Clause.(none |> num_teams 1 |> num_threads 32 |> simdlen 8
                       |> parallel_mode Mode.Generic)
      (fun ctx ->
        if Omp.thread_num ctx = 0 then
          total := Omp.simd_sum ctx ~trip:100 (fun i -> float_of_int i))
  in
  checkf "sum 0..99" 4950.0 !total

let test_facade_collapse () =
  Omp.collapse2 ~n1:3 ~n2:5 (fun decode ->
      check_bool "decode" true (decode 7 = (1, 2));
      check_bool "first" true (decode 0 = (0, 0));
      check_bool "last" true (decode 14 = (2, 4)));
  Omp.collapse3 ~n1:2 ~n2:3 ~n3:4 (fun decode ->
      check_bool "3d" true (decode 23 = (1, 2, 3)))

let test_facade_barrier_counts () =
  (* a barrier inside the region must synchronize exactly the executing
     threads — deadlock-free in both modes *)
  List.iter
    (fun mode ->
      let (_ : Gpusim.Device.report) =
        Omp.target_teams ~cfg ~clauses:(clauses3 ~simdlen:8 ~mode) (fun ctx ->
            Omp.distribute_parallel_for ctx ~trip:16 (fun _ -> ());
            Omp.barrier ctx;
            Omp.distribute_parallel_for ctx ~trip:16 (fun _ -> ()))
      in
      ())
    [ Mode.Spmd; Mode.Generic ]

let test_facade_single_master () =
  let space = Memory.space () in
  let singles = Memory.ialloc space 1 and masters = Memory.ialloc space 1 in
  List.iter
    (fun mode ->
      Memory.host_seti singles 0 0;
      Memory.host_seti masters 0 0;
      let (_ : Gpusim.Device.report) =
        Omp.target_teams ~cfg
          ~clauses:(clauses3 ~simdlen:8 ~mode)
          (fun ctx ->
            Omp.single ctx (fun () ->
                ignore (Memory.atomic_iadd singles ctx.Omprt.Team.th 0 1));
            Omp.master ctx (fun () ->
                ignore (Memory.atomic_iadd masters ctx.Omprt.Team.th 0 1)))
      in
      (* 4 teams: once per team for both constructs *)
      check_int "single once per team" 4 (Memory.host_geti singles 0);
      check_int "master once per team" 4 (Memory.host_geti masters 0))
    [ Mode.Spmd; Mode.Generic ]

let test_facade_dynamic_schedule () =
  let space = Memory.space () in
  let n = 77 in
  let out = Memory.falloc space n in
  let (_ : Gpusim.Device.report) =
    Omp.target_teams ~cfg ~clauses:(clauses3 ~simdlen:4 ~mode:Mode.Spmd)
      (fun ctx ->
        Omp.for_ ctx ~schedule:(Clause.Dynamic 3) ~trip:n (fun i ->
            Omp.simd ctx ~trip:1 (fun _ ->
                Memory.fset out ctx.Omprt.Team.th i 1.0)))
  in
  for i = 0 to n - 1 do
    checkf "dynamic covered" 1.0 (Memory.host_get out i)
  done

(* --- data environment --------------------------------------------------- *)

let test_data_env_roundtrip () =
  let env = Data_env.create () in
  let host = Array.init 100 float_of_int in
  let m = Data_env.map_to env ~name:"x" host in
  check_int "h2d bytes" 800 (Data_env.h2d_bytes env);
  let back = Data_env.map_from env m in
  check_int "d2h bytes" 800 (Data_env.d2h_bytes env);
  Alcotest.(check (array (float 0.0))) "roundtrip" host back;
  check_bool "transfer cycles > 0" true (Data_env.transfer_cycles env > 0.0)

let test_data_env_target_data () =
  let env = Data_env.create () in
  let (_, cycles) =
    Data_env.with_target_data env (fun env ->
        ignore (Data_env.map_to env ~name:"a" (Array.make 1000 1.0)))
  in
  checkf "region cycles" (8000.0 /. 23.0) cycles

let test_data_env_alloc_no_transfer () =
  let env = Data_env.create () in
  let (_ : Gpusim.Memory.farray Data_env.mapping) =
    Data_env.map_alloc env ~name:"scratch" 64
  in
  check_int "no h2d" 0 (Data_env.h2d_bytes env)

(* --- deferred target tasks ([26]) --------------------------------------- *)

module Tasks = Openmp.Tasks

let dummy_kernel cycles () =
  (* a kernel report with a chosen synthetic duration: spin a thread for
     [cycles] busy cycles on a 1-block launch *)
  Gpusim.Device.launch ~cfg ~grid:1 ~block:32
    ~init:(fun ~block_id _ -> block_id)
    ~body:(fun _ th ->
      if th.Gpusim.Thread.tid = 0 then Gpusim.Thread.tick th cycles)
    ()

let test_tasks_dependences () =
  let q = Tasks.create () in
  let a = Tasks.transfer q ~name:"in" ~bytes:2300 () in
  let k = Tasks.kernel q ~depends:[ a ] ~name:"k" (dummy_kernel 500.0) in
  let b = Tasks.transfer q ~depends:[ k ] ~direction:`D2h ~name:"out" ~bytes:2300 () in
  let tl = Tasks.wait_all q in
  let ea = Tasks.find tl a and ek = Tasks.find tl k and eb = Tasks.find tl b in
  check_bool "kernel after h2d" true (ek.Tasks.start >= ea.Tasks.finish);
  check_bool "d2h after kernel" true (eb.Tasks.start >= ek.Tasks.finish);
  checkf "makespan = last finish" eb.Tasks.finish (Tasks.makespan tl)

let test_tasks_overlap () =
  (* two independent chains: their transfers overlap with the other
     chain's kernel, so the makespan beats the serial sum *)
  let q = Tasks.create () in
  for i = 0 to 3 do
    let h = Tasks.transfer q ~name:(Printf.sprintf "in%d" i) ~bytes:46000 () in
    let k =
      Tasks.kernel q ~depends:[ h ] ~name:(Printf.sprintf "k%d" i)
        (dummy_kernel 2000.0)
    in
    ignore
      (Tasks.transfer q ~depends:[ k ] ~direction:`D2h
         ~name:(Printf.sprintf "out%d" i) ~bytes:46000 ())
  done;
  let tl = Tasks.wait_all q in
  check_bool "overlap wins" true
    (Tasks.makespan tl < Tasks.serial_time tl *. 0.8)

let test_tasks_kernels_serialize () =
  let q = Tasks.create () in
  let k1 = Tasks.kernel q ~name:"k1" (dummy_kernel 300.0) in
  let k2 = Tasks.kernel q ~name:"k2" (dummy_kernel 300.0) in
  let tl = Tasks.wait_all q in
  let e1 = Tasks.find tl k1 and e2 = Tasks.find tl k2 in
  check_bool "device engine serializes kernels" true
    (e2.Tasks.start >= e1.Tasks.finish)

let test_tasks_validation () =
  let q = Tasks.create () in
  (* a task id minted by another queue is rejected *)
  let foreign = Tasks.kernel (Tasks.create ()) ~name:"f" (dummy_kernel 1.0) in
  check_bool "foreign dep" true
    (try
       ignore (Tasks.kernel q ~depends:[ foreign ] ~name:"k" (dummy_kernel 1.0));
       false
     with Invalid_argument _ -> true);
  ignore (Tasks.wait_all q);
  check_bool "post-wait enqueue rejected" true
    (try
       ignore (Tasks.kernel q ~name:"late" (dummy_kernel 1.0));
       false
     with Invalid_argument _ -> true);
  (* wait_all is idempotent *)
  let tl1 = Tasks.wait_all q and tl2 = Tasks.wait_all q in
  checkf "same makespan" (Tasks.makespan tl1) (Tasks.makespan tl2)

(* --- offload pipeline ----------------------------------------------------- *)

let saxpy_kernel =
  Ir.kernel ~name:"saxpy"
    ~params:
      [
        { Ir.pname = "x"; pty = Ir.P_farray };
        { Ir.pname = "y"; pty = Ir.P_farray };
        { Ir.pname = "a"; pty = Ir.P_float };
        { Ir.pname = "n"; pty = Ir.P_int };
      ]
    [
      Ir.distribute_parallel_for ~var:"blk" ~lo:(Ir.i 0) ~hi:Ir.(v "n" / i 8)
        [
          Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i 8)
            [
              Ir.Decl
                {
                  name = "idx";
                  ty = Ir.Tint;
                  init = Ir.(Binop (Add, Binop (Mul, v "blk", i 8), v "j"));
                };
              Ir.Store
                ( "y",
                  Ir.v "idx",
                  Ir.(
                    Binop
                      ( Add,
                        Binop (Mul, v "a", Load ("x", v "idx")),
                        Load ("y", v "idx") )) );
            ];
        ];
    ]

let test_offload_pipeline () =
  match Offload.compile saxpy_kernel with
  | Error _ -> Alcotest.fail "saxpy must compile"
  | Ok compiled ->
      let remarks = Offload.remarks compiled in
      check_bool "mentions outlining" true
        (List.exists (fun r -> Astring_like.contains r "outlined fn") remarks);
      check_bool "spmd verdict" true
        (List.exists (fun r -> Astring_like.contains r "spmd mode") remarks);
      let env = Data_env.create () in
      let n = 128 in
      let x = Data_env.map_to env ~name:"x" (Array.init n float_of_int) in
      let y = Data_env.map_to env ~name:"y" (Array.make n 1.0) in
      let (_ : Gpusim.Device.report) =
        Offload.run ~cfg
          ~clauses:Clause.(none |> num_teams 2 |> num_threads 64 |> simdlen 8)
          ~bindings:
            [
              ("x", Ompir.Eval.B_farr x.Data_env.device);
              ("y", Ompir.Eval.B_farr y.Data_env.device);
              ("a", Ompir.Eval.B_float 3.0);
              ("n", Ompir.Eval.B_int n);
            ]
          compiled
      in
      let result = Data_env.map_from env y in
      Array.iteri
        (fun idx v -> checkf "saxpy" ((3.0 *. float_of_int idx) +. 1.0) v)
        result

(* A kernel whose parallel body has a sequential side effect: generic by
   default, SPMD after guardization (§7 / [16]). *)
let guarded_kernel =
  Ir.kernel ~name:"rowsum_with_mark"
    ~params:
      [
        { Ir.pname = "a"; pty = Ir.P_farray };
        { Ir.pname = "marks"; pty = Ir.P_farray };
        { Ir.pname = "counts"; pty = Ir.P_iarray };
        { Ir.pname = "n"; pty = Ir.P_int };
      ]
    [
      Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
        [
          (* sequential side effects: a store and an exactly-once probe *)
          Ir.Store ("marks", Ir.v "r", Ir.f 1.0);
          Ir.Store_int ("counts", Ir.v "r", Ir.(Load_int ("counts", v "r") + i 1));
          Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i 8)
            [
              Ir.Store
                ("a", Ir.(Binop (Add, Binop (Mul, v "r", i 8), v "j")), Ir.f 2.0);
            ];
        ];
    ]

let run_guarded ~guardize ~parallel_mode =
  let n = 48 in
  let space = Gpusim.Memory.space () in
  let a = Memory.falloc space (n * 8) in
  let marks = Memory.falloc space n in
  let counts = Memory.ialloc space n in
  match Offload.compile ~guardize guarded_kernel with
  | Error _ -> Alcotest.fail "guarded kernel must compile"
  | Ok compiled ->
      let clauses =
        match parallel_mode with
        | Some m ->
            Clause.(none |> num_teams 2 |> num_threads 64 |> simdlen 8
                    |> Clause.parallel_mode m)
        | None -> Clause.(none |> num_teams 2 |> num_threads 64 |> simdlen 8)
      in
      let report =
        Offload.run ~cfg ~clauses
          ~bindings:
            [
              ("a", Ompir.Eval.B_farr a);
              ("marks", Ompir.Eval.B_farr marks);
              ("counts", Ompir.Eval.B_iarr counts);
              ("n", Ompir.Eval.B_int n);
            ]
          compiled
      in
      (compiled, report, a, marks, counts, n)

let test_guardize_spmdizes () =
  let compiled, _, a, marks, counts, n = run_guarded ~guardize:true ~parallel_mode:None in
  check_int "guards inserted" 1 compiled.Offload.guards_inserted;
  check_bool "region now SPMD" true
    (List.for_all (fun (_, m) -> m = Mode.Spmd) compiled.Offload.region_modes);
  for r = 0 to n - 1 do
    checkf "marked" 1.0 (Memory.host_get marks r);
    (* the probe increments a plain (non-atomic) counter: exactly-once
       means it ends at 1 even though 8 lanes execute the region *)
    check_int "exactly once" 1 (Memory.host_geti counts r)
  done;
  for idx = 0 to (n * 8) - 1 do
    checkf "simd stores" 2.0 (Memory.host_get a idx)
  done

let test_guardize_remark () =
  match Offload.compile ~guardize:true guarded_kernel with
  | Error _ -> Alcotest.fail "must compile"
  | Ok compiled ->
      check_bool "remark mentions guards" true
        (List.exists
           (fun r -> Astring_like.contains r "SPMDized")
           (Offload.remarks compiled))

let test_guardize_cost_ordering () =
  (* §6.5: guarded SPMD should beat the generic state machine, but pure
     SPMD (no guards needed) stays ahead of both. *)
  let time (compiled, report, _, _, _, _) =
    ignore compiled;
    report.Gpusim.Device.time_cycles
  in
  let generic = time (run_guarded ~guardize:false ~parallel_mode:None) in
  let guarded = time (run_guarded ~guardize:true ~parallel_mode:None) in
  check_bool "guarded SPMD beats generic" true (guarded < generic)

let test_guardize_never_wraps_directives () =
  (* an If carrying both a store and a simd loop cannot be guarded —
     wrapping the simd loop would desynchronize its group protocol; the
     region must simply stay generic *)
  let k =
    Ir.kernel ~name:"mixed"
      ~params:
        [ { Ir.pname = "a"; pty = Ir.P_farray }; { Ir.pname = "n"; pty = Ir.P_int } ]
      [
        Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
          [
            Ir.If
              ( Ir.(Binop (Eq, Binop (Mod, v "r", i 2), i 0)),
                [
                  Ir.Store ("a", Ir.v "r", Ir.f 1.0);
                  Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i 2) [];
                ],
                [] );
          ];
      ]
  in
  match Offload.compile ~guardize:true k with
  | Error _ -> Alcotest.fail "mixed kernel must compile"
  | Ok compiled ->
      check_int "no guards inserted" 0 compiled.Offload.guards_inserted;
      check_bool "region stays generic" true
        (List.for_all (fun (_, m) -> m = Mode.Generic) compiled.Offload.region_modes);
      (* and it still runs correctly *)
      let space = Gpusim.Memory.space () in
      let a = Memory.falloc space 20 in
      let (_ : Gpusim.Device.report) =
        Offload.run ~cfg
          ~clauses:Clause.(none |> num_teams 2 |> num_threads 32 |> simdlen 8)
          ~bindings:[ ("a", Ompir.Eval.B_farr a); ("n", Ompir.Eval.B_int 20) ]
          compiled
      in
      for r = 0 to 19 do
        checkf "even rows marked"
          (if r mod 2 = 0 then 1.0 else 0.0)
          (Memory.host_get a r)
      done

let test_offload_rejects_bad_kernel () =
  let bad =
    Ir.kernel ~name:"bad" ~params:[] [ Ir.Assign ("ghost", Ir.i 1) ]
  in
  check_bool "compile error" true (Result.is_error (Offload.compile bad))

let with_env pairs f =
  List.iter (fun (k, v) -> Unix.putenv k v) pairs;
  Fun.protect f ~finally:(fun () ->
      List.iter (fun (k, _) -> Unix.putenv k "") pairs)

let test_sharing_reservation_sizing () =
  match Offload.compile saxpy_kernel with
  | Error _ -> Alcotest.fail "saxpy must compile"
  | Ok compiled ->
      let program = compiled.Offload.program in
      let footprint = Ompir.Globalize.footprint_bytes program in
      check_bool "footprint positive" true (footprint > 0);
      let reserve ~budget =
        Offload.sharing_reservation ~budget ~num_threads:64 ~simd_len:8
          program
      in
      (* 64 threads / simdlen 8 = 8 groups, plus the team main = 9
         concurrent publishers *)
      check_int "dynamic sizing"
        (max Omprt.Sharing.min_bytes (footprint * 9))
        (reserve ~budget:65536);
      (* shrink-only: a tight budget is never exceeded *)
      check_bool "caps at budget" true
        (reserve ~budget:Omprt.Sharing.min_bytes <= Omprt.Sharing.min_bytes);
      with_env [ ("OMPSIMD_SHARING_BYTES", "512") ] (fun () ->
          check_int "env pin wins" 512 (reserve ~budget:65536));
      with_env [ ("OMPSIMD_SHARING_DYNAMIC", "0") ] (fun () ->
          check_int "dynamic disabled returns budget" 65536
            (reserve ~budget:65536))

let suite =
  [
    ( "openmp.clauses",
      [
        Alcotest.test_case "defaults" `Quick test_clause_defaults;
        Alcotest.test_case "composition" `Quick test_clause_composition;
        Alcotest.test_case "validation" `Quick test_clause_validation;
      ] );
    ( "openmp.facade",
      [
        Alcotest.test_case "three level" `Quick test_facade_three_level;
        Alcotest.test_case "two level" `Quick test_facade_two_level;
        Alcotest.test_case "queries" `Quick test_facade_queries;
        Alcotest.test_case "simd sum" `Quick test_facade_simd_sum;
        Alcotest.test_case "collapse" `Quick test_facade_collapse;
        Alcotest.test_case "barrier" `Quick test_facade_barrier_counts;
        Alcotest.test_case "single/master" `Quick test_facade_single_master;
        Alcotest.test_case "dynamic schedule" `Quick test_facade_dynamic_schedule;
      ] );
    ( "openmp.data_env",
      [
        Alcotest.test_case "roundtrip" `Quick test_data_env_roundtrip;
        Alcotest.test_case "target data" `Quick test_data_env_target_data;
        Alcotest.test_case "alloc" `Quick test_data_env_alloc_no_transfer;
      ] );
    ( "openmp.tasks",
      [
        Alcotest.test_case "dependences" `Quick test_tasks_dependences;
        Alcotest.test_case "overlap" `Quick test_tasks_overlap;
        Alcotest.test_case "kernels serialize" `Quick test_tasks_kernels_serialize;
        Alcotest.test_case "validation" `Quick test_tasks_validation;
      ] );
    ( "openmp.offload",
      [
        Alcotest.test_case "pipeline" `Quick test_offload_pipeline;
        Alcotest.test_case "guardize spmdizes" `Quick test_guardize_spmdizes;
        Alcotest.test_case "guardize remark" `Quick test_guardize_remark;
        Alcotest.test_case "guardize cost ordering" `Quick
          test_guardize_cost_ordering;
        Alcotest.test_case "guardize never wraps directives" `Quick
          test_guardize_never_wraps_directives;
        Alcotest.test_case "rejects bad kernel" `Quick test_offload_rejects_bad_kernel;
        Alcotest.test_case "sharing reservation sizing" `Quick
          test_sharing_reservation_sizing;
      ] );
  ]
