(* Differential testing: random, well-formed, race-free IR kernels must
   compute identical results on the simulated device — in every execution
   mode and geometry — and under the sequential host interpreter.

   Generator invariants that make comparison sound:
   - writes go only to [out] (and only at the canonical disjoint index
     (r*W + j), so parallel iterations never collide);
   - reads come only from the read-only [src] array and scalars;
   - atomics go to [acc_arr] with the (commutative) add, compared with a
     tolerance since float addition is not associative;
   - all indices are [... mod n] with n > 0, so bounds always hold.

   The sanitizer-certified fleet reuses the generator with an optional
   race PLANT: a store whose index deliberately drops an induction
   variable (lane plant) or a guarded fixed-cell store whose guard only
   synchronizes one SIMD group (leader plant).  The certification
   property is exact in both directions: a kernel is reported by the
   static layer and by the dynamic sanitizer iff a race was planted. *)

module Memory = Gpusim.Memory
module Mode = Omprt.Mode
module Ir = Ompir.Ir
module Check = Ompir.Check
module Outline = Ompir.Outline
module Eval = Ompir.Eval
module Hosteval = Ompir.Hosteval

let cfg = Gpusim.Config.small

(* --- random expression / statement generators -------------------------- *)

open QCheck

(* Non-negative int expressions over the given variables and [n]. *)
let rec gen_index_expr vars depth st =
  if depth = 0 then
    run_leaf vars st
  else
    match Gen.int_range 0 3 st with
    | 0 -> run_leaf vars st
    | 1 ->
        Ir.Binop
          (Ir.Add, gen_index_expr vars (depth - 1) st, gen_index_expr vars (depth - 1) st)
    | 2 ->
        Ir.Binop
          (Ir.Mul, gen_index_expr vars (depth - 1) st, Ir.Int_lit (Gen.int_range 1 3 st))
    | _ ->
        Ir.Binop
          (Ir.Max, gen_index_expr vars (depth - 1) st, gen_index_expr vars (depth - 1) st)

and run_leaf vars st =
  let choices = List.map (fun v -> Ir.Var v) vars @ [ Ir.Int_lit (Gen.int_range 0 9 st) ] in
  List.nth choices (Gen.int_range 0 (List.length choices - 1) st)

let bounded_index vars st =
  Ir.Binop (Ir.Mod, gen_index_expr vars 2 st, Ir.Var "n")

(* Float expressions reading only [src] and float locals. *)
let rec gen_float_expr vars fvars depth st =
  if depth = 0 then float_leaf vars fvars st
  else
    match Gen.int_range 0 4 st with
    | 0 -> float_leaf vars fvars st
    | 1 ->
        Ir.Binop
          ( Ir.Add,
            gen_float_expr vars fvars (depth - 1) st,
            gen_float_expr vars fvars (depth - 1) st )
    | 2 ->
        Ir.Binop
          ( Ir.Mul,
            gen_float_expr vars fvars (depth - 1) st,
            gen_float_expr vars fvars (depth - 1) st )
    | 3 -> Ir.Unop (Ir.Abs, gen_float_expr vars fvars (depth - 1) st)
    | _ -> Ir.Load ("src", bounded_index vars st)

and float_leaf vars fvars st =
  let lit () = Ir.Float_lit (float_of_int (Gen.int_range (-4) 4 st) /. 2.0) in
  match fvars with
  | [] -> (
      match Gen.int_range 0 1 st with
      | 0 -> lit ()
      | _ -> Ir.Load ("src", bounded_index vars st))
  | _ -> (
      match Gen.int_range 0 2 st with
      | 0 -> lit ()
      | 1 -> Ir.Var (List.nth fvars (Gen.int_range 0 (List.length fvars - 1) st))
      | _ -> Ir.Load ("src", bounded_index vars st))

(* Race plants for the sanitizer-certified fleet. *)
type plant =
  | No_plant
  | Plant_lane  (** simd-body store whose index is invariant in [j] *)
  | Plant_leader  (** guarded fixed-cell store: leaders of distinct groups race *)

let plant_to_string = function
  | No_plant -> "none"
  | Plant_lane -> "lane"
  | Plant_leader -> "leader"

let gen_plant st =
  match Gen.int_range 0 3 st with
  | 0 -> Plant_lane
  | 1 -> Plant_leader
  | _ -> No_plant

(* The simd body: a couple of declarations, then a store to the canonical
   disjoint slot and possibly an atomic. *)
let gen_simd_body ?(plant = No_plant) ~width vars st =
  let decl_count = Gen.int_range 0 2 st in
  let rec decls k fvars acc =
    if k = 0 then (List.rev acc, fvars)
    else
      let name = Printf.sprintf "t%d" k in
      let d =
        Ir.Decl
          { name; ty = Ir.Tfloat; init = gen_float_expr vars fvars 2 st }
      in
      decls (k - 1) (name :: fvars) (d :: acc)
  in
  let ds, fvars = decls decl_count [] [] in
  let idx = Ir.(Binop (Add, Binop (Mul, Var "r", Int_lit width), Var "j")) in
  let store = Ir.Store ("out", idx, gen_float_expr vars fvars 2 st) in
  let atomic =
    if Gen.bool st then
      [
        Ir.Atomic_add
          ( "acc_arr",
            Ir.Binop (Ir.Mod, Ir.Var "r", Ir.Int_lit 4),
            gen_float_expr vars fvars 1 st );
      ]
    else []
  in
  (* lane plant: the index drops [j], so every active lane of the group
     hits row r's cell — a true intra-group write-write race *)
  let planted =
    match plant with
    | Plant_lane ->
        [
          Ir.Store
            ( "out",
              Ir.(Binop (Mul, Var "r", Int_lit width)),
              gen_float_expr vars fvars 1 st );
        ]
    | No_plant | Plant_leader -> []
  in
  ds @ [ store ] @ atomic @ planted

type case = {
  kernel : Ir.kernel;
  rows : int;
  width : int;
  n : int;
  teams : int;
  threads : int;
  teams_mode : Mode.t;
  simd_len : int;
  parallel_mode : [ `Auto | `Force of Mode.t ];
  guardize : bool;
  sched : Ir.schedule;
  plant : plant;
}

let gen_sched st =
  List.nth
    [
      Ir.Sched_static;
      Ir.Sched_chunked 2;
      Ir.Sched_dynamic 1;
      Ir.Sched_dynamic 3;
    ]
    (Gen.int_range 0 3 st)

let sched_to_string = function
  | Ir.Sched_static -> "static"
  | Ir.Sched_chunked n -> Printf.sprintf "chunked(%d)" n
  | Ir.Sched_dynamic n -> Printf.sprintf "dynamic(%d)" n

let gen_case ?(plant = Gen.return No_plant) st =
  let plant = plant st in
  let width = List.nth [ 4; 8; 16; 32 ] (Gen.int_range 0 3 st) in
  (* leader plants need rows spread over at least two SIMD groups of
     every team for the race to be guaranteed reachable *)
  let rows =
    match plant with
    | Plant_leader -> Gen.int_range 8 40 st
    | No_plant | Plant_lane -> Gen.int_range 1 40 st
  in
  let n = rows * width in
  (* region body: optional row-local decls, an optional guarded-able
     sequential store, the simd loop, optionally a reduction *)
  let row_decl =
    Ir.Decl
      {
        name = "base";
        ty = Ir.Tfloat;
        init = gen_float_expr [ "r" ] [] 2 st;
      }
  in
  let seq_store =
    if Gen.bool st then
      [ Ir.Store ("marks", Ir.Var "r", gen_float_expr [ "r" ] [ "base" ] 1 st) ]
    else []
  in
  (* leader plant: the guard elects one leader per SIMD group, but
     leaders of different groups (and teams) still race on marks[0] *)
  let guarded_plant =
    match plant with
    | Plant_leader ->
        [ Ir.Guarded [ Ir.Store ("marks", Ir.Int_lit 0, gen_float_expr [ "r" ] [] 1 st) ] ]
    | No_plant | Plant_lane -> []
  in
  (* a pure sequential loop refining a local: SPMD-safe region code *)
  let seq_loop =
    if Gen.bool st then
      [
        Ir.For
          {
            var = "w";
            lo = Ir.Int_lit 0;
            hi = Ir.Int_lit (Gen.int_range 1 3 st);
            body = [ Ir.Assign ("base", Ir.(Binop (Add, Var "base", Float_lit 0.25))) ];
          };
      ]
    else []
  in
  let simd_loop =
    let body = gen_simd_body ~plant ~width [ "r"; "j" ] st in
    let plain = Ir.simd ~var:"j" ~lo:(Ir.Int_lit 0) ~hi:(Ir.Int_lit width) body in
    if Gen.bool st then
      (* branch on the row parity: groups agree, so simd call counts stay
         consistent within each group *)
      Ir.If
        ( Ir.(Binop (Eq, Binop (Mod, Var "r", Int_lit 2), Int_lit 0)),
          [ plain ],
          [
            Ir.simd ~var:"j" ~lo:(Ir.Int_lit 0) ~hi:(Ir.Int_lit width)
              (gen_simd_body ~plant ~width [ "r"; "j" ] st);
          ] )
    else plain
  in
  let reduction =
    if Gen.bool st then
      [
        Ir.Decl { name = "total"; ty = Ir.Tfloat; init = Ir.Float_lit 0.0 };
        Ir.simd_sum ~acc:"total" ~var:"k" ~lo:(Ir.Int_lit 0)
          ~hi:(Ir.Int_lit width)
          ~value:
            (Ir.Load
               ( "src",
                 Ir.(Binop (Mod, Binop (Add, Var "r", Var "k"), Var "n")) ))
          [];
        Ir.Store ("red", Ir.Var "r", Ir.Var "total");
      ]
    else []
  in
  let sched =
    (* static distribution guarantees a leader plant lands on at least
       two groups; lane plants race under any schedule *)
    match plant with
    | Plant_leader -> Ir.Sched_static
    | No_plant | Plant_lane -> gen_sched st
  in
  let body =
    [
      Ir.distribute_parallel_for ~sched ~var:"r" ~lo:(Ir.Int_lit 0)
        ~hi:(Ir.Var "rows")
        ((row_decl :: (seq_loop @ seq_store @ guarded_plant))
        @ [ simd_loop ] @ reduction);
    ]
  in
  let kernel =
    Ir.kernel ~name:"random"
      ~params:
        [
          { Ir.pname = "src"; pty = Ir.P_farray };
          { Ir.pname = "out"; pty = Ir.P_farray };
          { Ir.pname = "marks"; pty = Ir.P_farray };
          { Ir.pname = "red"; pty = Ir.P_farray };
          { Ir.pname = "acc_arr"; pty = Ir.P_farray };
          { Ir.pname = "rows"; pty = Ir.P_int };
          { Ir.pname = "n"; pty = Ir.P_int };
        ]
      body
  in
  {
    kernel;
    rows;
    width;
    n;
    teams = Gen.int_range 1 3 st;
    threads = List.nth [ 32; 64; 128 ] (Gen.int_range 0 2 st);
    teams_mode = (if Gen.bool st then Mode.Spmd else Mode.Generic);
    simd_len =
      (* a planted race needs real SIMD groups: >= 2 lanes per group and
         (for the leader plant) >= 2 groups per warp *)
      (match plant with
      | No_plant -> List.nth [ 1; 2; 4; 8; 16; 32 ] (Gen.int_range 0 5 st)
      | Plant_lane | Plant_leader ->
          List.nth [ 2; 4; 8 ] (Gen.int_range 0 2 st));
    parallel_mode =
      List.nth [ `Auto; `Force Mode.Spmd; `Force Mode.Generic ]
        (Gen.int_range 0 2 st);
    guardize = Gen.bool st;
    sched;
    plant;
  }

(* Forcing SPMD on a kernel with a sequential store would be a genuine
   miscompile (redundant side effects); guardize repairs it.  Auto and
   generic are always sound. *)
let sound case =
  match case.parallel_mode with
  | `Force Mode.Spmd -> case.guardize || Ompir.Spmdize.all_spmd case.kernel
  | `Force Mode.Generic | `Auto -> true

let make_bindings case =
  let space = Memory.space () in
  let g = Ompsimd_util.Prng.create ~seed:(case.rows + (case.width * 131)) in
  let src =
    Memory.of_float_array space
      (Array.init case.n (fun _ -> Ompsimd_util.Prng.float g 2.0 -. 1.0))
  in
  [
    ("src", Eval.B_farr src);
    ("out", Eval.B_farr (Memory.falloc space case.n));
    ("marks", Eval.B_farr (Memory.falloc space (max 1 case.rows)));
    ("red", Eval.B_farr (Memory.falloc space (max 1 case.rows)));
    ("acc_arr", Eval.B_farr (Memory.falloc space 4));
    ("rows", Eval.B_int case.rows);
    ("n", Eval.B_int case.n);
  ]
  |> fun b -> (space, b)

let array_of bindings name =
  match List.assoc name bindings with
  | Eval.B_farr a -> Memory.to_float_array a
  | _ -> assert false

let close a b =
  Array.for_all2
    (fun x y ->
      let scale = Float.max 1.0 (Float.max (abs_float x) (abs_float y)) in
      abs_float (x -. y) <= 1e-9 *. scale)
    a b

let run_differential case =
  if not (sound case) then true
  else begin
    (* the checker must accept the generated kernel *)
    (match Check.kernel case.kernel with
    | Ok () -> ()
    | Error es ->
        Test.fail_reportf "generator produced an ill-formed kernel: %s"
          (String.concat "; "
             (List.map (fun (e : Check.error) -> e.Check.what) es)));
    let kernel =
      if case.guardize then fst (Ompir.Spmdize.guardize case.kernel)
      else case.kernel
    in
    let program = Outline.run kernel in
    (* host reference *)
    let _, host_bindings = make_bindings case in
    Hosteval.run ~bindings:host_bindings case.kernel;
    (* device run *)
    let _, dev_bindings = make_bindings case in
    let options =
      {
        Eval.num_teams = case.teams;
        num_threads = case.threads;
        teams_mode = case.teams_mode;
        parallel_mode = case.parallel_mode;
        simd_len = case.simd_len;
        sharing_bytes = 2048;
      }
    in
    let (_ : Gpusim.Device.report) =
      Eval.run ~cfg ~options ~bindings:dev_bindings program
    in
    List.for_all
      (fun name -> close (array_of host_bindings name) (array_of dev_bindings name))
      [ "out"; "marks"; "red"; "acc_arr" ]
  end

let print_case case =
  Printf.sprintf
    "rows=%d width=%d teams=%d threads=%d tmode=%s simdlen=%d mode=%s guardize=%b sched=%s plant=%s\n%s"
    case.rows case.width case.teams case.threads
    (Mode.to_string case.teams_mode) case.simd_len
    (match case.parallel_mode with
    | `Auto -> "auto"
    | `Force Mode.Spmd -> "spmd"
    | `Force Mode.Generic -> "generic")
    case.guardize
    (sched_to_string case.sched)
    (plant_to_string case.plant)
    (Ompir.Printer.kernel_to_string case.kernel)

let case_arbitrary = QCheck.make ~print:print_case gen_case

(* Same geometry/mode matrix, but half the kernels carry a planted race. *)
let certified_arbitrary =
  QCheck.make ~print:print_case (gen_case ~plant:gen_plant)

(* --- staged evaluator vs tree walker ---------------------------------- *)

(* The two engines must be bit-identical, not merely close: same output
   bits, same merged counters (Counters.equal is bit-exact, extras
   included), same simulated time — sequentially and on a domain pool. *)

let options_of case =
  {
    Eval.num_teams = case.teams;
    num_threads = case.threads;
    teams_mode = case.teams_mode;
    parallel_mode = case.parallel_mode;
    simd_len = case.simd_len;
    sharing_bytes = 2048;
  }

let engines_agree ~name ?pool ?(atomic_arrays = []) ~options ~bindings_of
    ~out_arrays ~kernel program =
  let _, walk_b = bindings_of () in
  let rw = Eval.run ~cfg ?pool ~options ~bindings:walk_b program in
  let _, staged_b = bindings_of () in
  let rs = Ompir.Compile.run ~cfg ?pool ~options ~bindings:staged_b program in
  List.iter
    (fun arr ->
      if array_of walk_b arr <> array_of staged_b arr then
        Test.fail_reportf "%s: engines disagree on %s[]" name arr)
    out_arrays;
  (* pooled domains apply atomic float adds in a racy order, so even two
     walker runs differ in the last ulp there — compare with a tolerance
     under a pool, exactly otherwise *)
  List.iter
    (fun arr ->
      let ok =
        match pool with
        | None -> array_of walk_b arr = array_of staged_b arr
        | Some _ -> close (array_of walk_b arr) (array_of staged_b arr)
      in
      if not ok then
        Test.fail_reportf "%s: engines disagree on atomic %s[]" name arr)
    atomic_arrays;
  if rw.Gpusim.Device.time_cycles <> rs.Gpusim.Device.time_cycles then
    Test.fail_reportf "%s: simulated time differs (walk %.3f, staged %.3f)"
      name rw.Gpusim.Device.time_cycles rs.Gpusim.Device.time_cycles;
  if
    not
      (Gpusim.Counters.equal rw.Gpusim.Device.counters
         rs.Gpusim.Device.counters)
  then Test.fail_reportf "%s: counters differ between engines" name;
  (* staged engine against the sequential host reference *)
  let _, host_b = bindings_of () in
  Hosteval.run ~bindings:host_b kernel;
  List.for_all
    (fun arr -> close (array_of host_b arr) (array_of staged_b arr))
    (out_arrays @ atomic_arrays)

let run_engine_differential ?pool case =
  if not (sound case) then true
  else begin
    let kernel =
      if case.guardize then fst (Ompir.Spmdize.guardize case.kernel)
      else case.kernel
    in
    let program = Outline.run kernel in
    engines_agree ~name:"random kernel" ?pool ~options:(options_of case)
      ~bindings_of:(fun () -> make_bindings case)
      ~out_arrays:[ "out"; "marks"; "red" ]
      ~atomic_arrays:[ "acc_arr" ] ~kernel:case.kernel program
  end

(* --- sanitizer certification ------------------------------------------- *)

(* The exact two-way property tying the layers together: a kernel is
   flagged by the static may-race pass AND reported by the dynamic
   sanitizer iff the generator planted a race.  No host comparison —
   planted kernels genuinely race, so only the verdicts are compared.
   Plants never steer control flow, so divergence/deadlock is impossible
   and every run completes. *)
let run_sanitizer_certification ?pool ~engine case =
  let kernel =
    if case.guardize then fst (Ompir.Spmdize.guardize case.kernel)
    else case.kernel
  in
  let planted = case.plant <> No_plant in
  let static_findings = Ompir.Racecheck.check_kernel kernel in
  if static_findings <> [] <> planted then
    Test.fail_reportf "static layer: %d finding(s) for plant=%s:\n%s"
      (List.length static_findings)
      (plant_to_string case.plant)
      (String.concat "\n"
         (List.map Ompir.Racecheck.finding_to_string static_findings));
  let program = Outline.run kernel in
  let _, bindings = make_bindings case in
  Gpusim.Ompsan.enabled := true;
  let report =
    Fun.protect
      ~finally:(fun () -> Gpusim.Ompsan.refresh_from_env ())
      (fun () ->
        match engine with
        | `Staged ->
            Ompir.Compile.run ~cfg ?pool ~options:(options_of case) ~bindings
              program
        | `Walk -> Eval.run ~cfg ?pool ~options:(options_of case) ~bindings program)
  in
  match report.Gpusim.Device.sanitizer with
  | None -> Test.fail_reportf "sanitizer report missing from an enabled run"
  | Some san ->
      let dirty = not (Gpusim.Ompsan.is_clean san) in
      if dirty <> planted then
        Test.fail_reportf "dynamic layer: dirty=%b for plant=%s\n%s" dirty
          (plant_to_string case.plant)
          (String.concat "\n" (Gpusim.Ompsan.report_strings san));
      true

(* Both engines must also agree on the verdict itself. *)
let run_sanitizer_engine_agreement case =
  let a = run_sanitizer_certification ~engine:`Walk case in
  let b = run_sanitizer_certification ~engine:`Staged case in
  a && b

(* --- collapse(2) ------------------------------------------------------- *)

(* A collapsed distribute-parallel-for: the flat loop plus the div/mod
   index-recovery decls the desugaring inserts — resolved to slots by the
   staged engine. *)
type collapse_case = {
  crows : int;
  cinner : int;
  cwidth : int;
  cteams : int;
  cthreads : int;
  csimd_len : int;
  csched : Ir.schedule;
  cplant : bool;  (** plant a j-invariant store in the simd body *)
}

let gen_collapse_case ?(plant = Gen.return false) st =
  let cplant = plant st in
  {
    crows = Gen.int_range 1 12 st;
    cinner = Gen.int_range 2 4 st;
    cwidth = List.nth [ 4; 8; 16 ] (Gen.int_range 0 2 st);
    cteams = Gen.int_range 1 3 st;
    cthreads = List.nth [ 32; 64 ] (Gen.int_range 0 1 st);
    csimd_len =
      (if cplant then List.nth [ 4; 8 ] (Gen.int_range 0 1 st)
       else List.nth [ 1; 4; 8 ] (Gen.int_range 0 2 st));
    csched = gen_sched st;
    cplant;
  }

let collapse_kernel cc =
  let open Ir in
  let flat = Binop (Add, Binop (Mul, Var "r", Int_lit cc.cinner), Var "c") in
  let body =
    [
      Decl { name = "f"; ty = Tint; init = flat };
      Decl
        {
          name = "base";
          ty = Tfloat;
          init = Load ("src", Binop (Mod, Var "f", Var "n"));
        };
      simd ~var:"j" ~lo:(Int_lit 0) ~hi:(Int_lit cc.cwidth)
        ([
           Store
             ( "out",
               Binop (Add, Binop (Mul, Var "f", Int_lit cc.cwidth), Var "j"),
               Binop
                 ( Add,
                   Var "base",
                   Load
                     ( "src",
                       Binop (Mod, Binop (Add, Var "f", Var "j"), Var "n") ) )
             );
         ]
        @
        if cc.cplant then
          [ Store ("out", Binop (Mul, Var "f", Int_lit cc.cwidth), Var "base") ]
        else []);
      Decl { name = "total"; ty = Tfloat; init = Float_lit 0.0 };
      simd_sum ~acc:"total" ~var:"k" ~lo:(Int_lit 0) ~hi:(Int_lit cc.cwidth)
        ~value:
          (Load ("src", Binop (Mod, Binop (Add, Var "f", Var "k"), Var "n")))
        [];
      Store ("red", Var "f", Var "total");
    ]
  in
  kernel ~name:"collapse"
    ~params:
      [
        { pname = "src"; pty = P_farray };
        { pname = "out"; pty = P_farray };
        { pname = "red"; pty = P_farray };
        { pname = "rows"; pty = P_int };
        { pname = "n"; pty = P_int };
      ]
    [
      collapsed_distribute_parallel_for ~sched:cc.csched
        ~vars:[ ("r", Var "rows"); ("c", Int_lit cc.cinner) ]
        body;
    ]

let collapse_bindings cc =
  let space = Memory.space () in
  let flat = cc.crows * cc.cinner in
  let n = flat * cc.cwidth in
  let g = Ompsimd_util.Prng.create ~seed:(cc.crows + (cc.cinner * 977)) in
  ( space,
    [
      ( "src",
        Eval.B_farr
          (Memory.of_float_array space
             (Array.init n (fun _ -> Ompsimd_util.Prng.float g 2.0 -. 1.0)))
      );
      ("out", Eval.B_farr (Memory.falloc space n));
      ("red", Eval.B_farr (Memory.falloc space flat));
      ("rows", Eval.B_int cc.crows);
      ("n", Eval.B_int n);
    ] )

let run_collapse_differential cc =
  let kernel = collapse_kernel cc in
  (match Check.kernel kernel with
  | Ok () -> ()
  | Error es ->
      Test.fail_reportf "collapse kernel ill-formed: %s"
        (String.concat "; "
           (List.map (fun (e : Check.error) -> e.Check.what) es)));
  let program = Outline.run kernel in
  let options =
    {
      Eval.num_teams = cc.cteams;
      num_threads = cc.cthreads;
      teams_mode = Mode.Spmd;
      parallel_mode = `Auto;
      simd_len = cc.csimd_len;
      sharing_bytes = 2048;
    }
  in
  engines_agree ~name:"collapse kernel" ~options
    ~bindings_of:(fun () -> collapse_bindings cc)
    ~out_arrays:[ "out"; "red" ] ~kernel program

let print_collapse cc =
  Printf.sprintf
    "rows=%d inner=%d width=%d teams=%d threads=%d simdlen=%d sched=%s plant=%b"
    cc.crows cc.cinner cc.cwidth cc.cteams cc.cthreads cc.csimd_len
    (sched_to_string cc.csched) cc.cplant

let collapse_arbitrary = QCheck.make ~print:print_collapse gen_collapse_case

let collapse_certified_arbitrary =
  QCheck.make ~print:print_collapse (gen_collapse_case ~plant:Gen.bool)

let collapse_options cc =
  {
    Eval.num_teams = cc.cteams;
    num_threads = cc.cthreads;
    teams_mode = Mode.Spmd;
    parallel_mode = `Auto;
    simd_len = cc.csimd_len;
    sharing_bytes = 2048;
  }

let run_collapse_certification cc =
  let kernel = collapse_kernel cc in
  let static_findings = Ompir.Racecheck.check_kernel kernel in
  if static_findings <> [] <> cc.cplant then
    Test.fail_reportf "collapse static layer: %d finding(s) for plant=%b"
      (List.length static_findings) cc.cplant;
  let program = Outline.run kernel in
  let _, bindings = collapse_bindings cc in
  Gpusim.Ompsan.enabled := true;
  let report =
    Fun.protect
      ~finally:(fun () -> Gpusim.Ompsan.refresh_from_env ())
      (fun () ->
        Ompir.Compile.run ~cfg ~options:(collapse_options cc) ~bindings program)
  in
  match report.Gpusim.Device.sanitizer with
  | None -> Test.fail_reportf "sanitizer report missing from an enabled run"
  | Some san ->
      let dirty = not (Gpusim.Ompsan.is_clean san) in
      if dirty <> cc.cplant then
        Test.fail_reportf "collapse dynamic layer: dirty=%b for plant=%b\n%s"
          dirty cc.cplant
          (String.concat "\n" (Gpusim.Ompsan.report_strings san));
      true

let qcheck_cases =
  let pool = Gpusim.Pool.create ~domains:3 () in
  [
    Test.make ~name:"random kernels: device matches host reference" ~count:120
      case_arbitrary run_differential;
    Test.make ~name:"random kernels: staged engine == tree walker" ~count:120
      case_arbitrary
      (fun case -> run_engine_differential case);
    Test.make ~name:"random kernels: engines agree on a domain pool" ~count:40
      case_arbitrary
      (fun case -> run_engine_differential ~pool case);
    Test.make ~name:"collapse(2): staged engine == tree walker == host"
      ~count:60 collapse_arbitrary run_collapse_differential;
    (* certified fleet: racy iff planted, on both layers *)
    Test.make ~name:"certified fleet: sanitizer verdict == plant (staged)"
      ~count:120 certified_arbitrary
      (run_sanitizer_certification ~engine:`Staged);
    Test.make ~name:"certified fleet: both engines certify the verdict"
      ~count:60 certified_arbitrary run_sanitizer_engine_agreement;
    Test.make ~name:"certified fleet: verdicts hold on a domain pool"
      ~count:30 certified_arbitrary
      (fun case -> run_sanitizer_certification ~pool ~engine:`Staged case);
    Test.make ~name:"certified fleet: collapse(2) verdict == plant" ~count:60
      collapse_certified_arbitrary run_collapse_certification;
    (* the serve cache keys on this digest: equal kernels must agree and
       structurally different kernels must split (the serialization is
       injective, so a collision would be an MD5 collision) *)
    Test.make ~name:"structurally distinct kernels get distinct digests"
      ~count:120
      (pair case_arbitrary case_arbitrary)
      (fun (a, b) ->
        let da = Ompir.Kdigest.hex a.kernel
        and db = Ompir.Kdigest.hex b.kernel in
        if a.kernel = b.kernel then da = db else da <> db);
  ]

(* A fixed seed makes every property run (and every shrink trace)
   reproducible across machines and CI reruns. *)
let qcheck_seed = 0x5eed

let suite =
  [
    ( "differential",
      List.map
        (fun t ->
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| qcheck_seed |])
            t)
        qcheck_cases );
  ]
