(* Runtest tier for the serve fleet: a seeded 100k-request soak in
   virtual time, plus three targeted scenarios the unit suite is too
   small to exercise.

   1. the soak proper: 100 000 mixed-profile requests (heavy-tailed
      arrivals, bursts, diurnal wave, flash crowds, four Zipf-hot
      tenants) through six shards with batching, stealing and the
      content memo on.  Asserts the no-lost-request invariant (every
      id exactly one terminal report, outcomes tally back to n),
      bounded queue depths on every shard, and byte-identical metrics
      / shard / tenant / fleet JSON on a same-seed replay — then the
      same invariants on a heterogeneous 4-shard fleet (two device
      configs, affinity placement on), plus device-shuffle identity:
      permuting the device multiset over shard ids moves no result
      byte;
   2. tenant fairness under pressure: a contended trace where the hot
      tenant must absorb the fair-admission evictions, and raising its
      configured weight must measurably shield it;
   3. per-shard breaker isolation: a watchdog budget calibrated so only
      the fat [chain] template exceeds it — its home shard's breaker
      opens, every other shard's stays closed, and bystander kernels
      are untouched;
   4. throughput: the batched fleet must beat the single-device
      scheduler on the compile-heavy chain trace the bench records.

   Everything runs in virtual time from fixed seeds: a failure here is
   a real regression, never flake. *)

module Fleet = Serve.Fleet
module Scheduler = Serve.Scheduler
module Request = Serve.Request
module Metrics = Serve.Metrics
module Traffic = Serve.Traffic

let cfg = Gpusim.Config.small
let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "fleet-soak FAIL: %s\n%!" msg)
    fmt

let base ?(queue_bound = 16) ?(servers = 2) ?(cache = 32) ?(retries = 2)
    ?(backoff = 500.0) ?(breaker = 4) ?slo ?(window = 20_000.0) () =
  {
    Scheduler.cfg;
    queue_bound;
    servers;
    cache_capacity = cache;
    max_retries = retries;
    backoff;
    breaker;
    slo;
    window;
    knobs = Openmp.Offload.default_knobs;
  }

let fconf ?queue_bound ?servers ?cache ?retries ?backoff ?breaker ?slo ?window
    ?(shards = 4) ?(batch = 8) ?(steal = true) ?(memo = true) ?(tenants = [])
    ?(devices = []) ?(affinity = true) ?(telemetry = false) ?(shed = true)
    ?(autoscale = Serve.Autoscale.disabled) ?(decay = 0) () =
  {
    Fleet.base =
      base ?queue_bound ?servers ?cache ?retries ?backoff ?breaker ?slo ?window
        ();
    shards;
    batch;
    steal;
    memo;
    tenants;
    devices;
    affinity;
    telemetry;
    shed;
    autoscale;
    decay;
  }

let count_outcome (res : Fleet.result) o =
  List.length
    (List.filter (fun (r : Fleet.rq_report) -> r.Fleet.outcome = o) res.Fleet.reports)

let tenant_stat (res : Fleet.result) name =
  List.find
    (fun (t : Metrics.tenant_stats) -> t.Metrics.tenant = name)
    res.Fleet.tenant_stats

(* the replay-comparable rendering of a run: aggregate metrics plus
   every breakdown, but not the 100k per-request reports *)
let summary_json (res : Fleet.result) =
  String.concat "\n"
    (Metrics.to_json res.Fleet.metrics
     :: Fleet.fleet_stats_json res.Fleet.fleet
     :: List.map Metrics.shard_stats_to_json res.Fleet.shard_stats
    @ List.map Metrics.tenant_stats_to_json res.Fleet.tenant_stats)

(* --- 1. the 100k soak -------------------------------------------------- *)

let soak_stage () =
  (* 100k by default; OMPSIMD_SOAK_FULL=1 runs the full million-request
     soak (minutes of host time — for scheduled long runs, not CI) *)
  let n =
    if Ompsimd_util.Env.flag "OMPSIMD_SOAK_FULL" ~default:false then 1_000_000
    else 100_000
  in
  let specs = Traffic.(generate (preset "mixed" ~n ~seed:42)) in
  let conf = fconf ~shards:6 ~batch:8 () in
  let t0 = Unix.gettimeofday () in
  let res = Fleet.run conf specs in
  let elapsed = Unix.gettimeofday () -. t0 in
  let m = res.Fleet.metrics in
  Printf.printf
    "fleet-soak: %d requests, %d launches (%d memoized), %d batches, %d steals, %.1fs host\n%!"
    n m.Metrics.launches res.Fleet.fleet.Fleet.memo_hits
    res.Fleet.fleet.Fleet.batches res.Fleet.fleet.Fleet.steals elapsed;
  (* no lost request: every id exactly one terminal report *)
  if List.length res.Fleet.reports <> n then
    fail "soak: %d reports for %d requests" (List.length res.Fleet.reports) n;
  List.iteri
    (fun i (r : Fleet.rq_report) ->
      if r.Fleet.spec.Request.id <> i then
        fail "soak: report %d carries id %d (duplicate or lost request)" i
          r.Fleet.spec.Request.id)
    res.Fleet.reports;
  let tally =
    m.Metrics.completed + m.Metrics.rejected + m.Metrics.shed
    + m.Metrics.shed_slo + m.Metrics.timed_out + m.Metrics.failed
    + m.Metrics.degraded
  in
  if tally <> n then fail "soak: outcomes tally to %d, not %d" tally n;
  if m.Metrics.completed = 0 then fail "soak: nothing completed";
  (* bounded queues: disarmed, so no relaunch ever re-enters past the
     admission bound — every shard's high-water mark obeys it *)
  List.iter
    (fun (s : Metrics.shard_stats) ->
      if s.Metrics.s_queue_max > conf.Fleet.base.Scheduler.queue_bound then
        fail "soak: shard %d queue peaked at %d (bound %d)" s.Metrics.shard
          s.Metrics.s_queue_max conf.Fleet.base.Scheduler.queue_bound;
      if s.Metrics.s_placed = 0 then
        fail "soak: shard %d was never placed to (dead ring segment)"
          s.Metrics.shard)
    res.Fleet.shard_stats;
  (* the memo is why this finishes in seconds: the spec space is small,
     so almost every launch is a content repeat *)
  if res.Fleet.fleet.Fleet.memo_hits < n / 2 then
    fail "soak: only %d memo hits — the content memo is not engaging"
      res.Fleet.fleet.Fleet.memo_hits;
  if res.Fleet.fleet.Fleet.batches = 0 then fail "soak: batching never engaged";
  if res.Fleet.fleet.Fleet.steals = 0 then fail "soak: stealing never engaged";
  (* deterministic replay: same seed, byte-identical summary *)
  let res2 = Fleet.run conf specs in
  if not (String.equal (summary_json res) (summary_json res2)) then
    fail "soak: same-seed replay produced a different summary";
  (* and the per-request results line up bit-exactly too *)
  if
    not
      (String.equal
         (Fleet.results_json res.Fleet.reports)
         (Fleet.results_json res2.Fleet.reports))
  then fail "soak: same-seed replay produced different per-request results"

(* --- 1b. the heterogeneous soak ---------------------------------------- *)

let hetero_stage () =
  (* a 4-shard fleet carrying two architectures twice each — duplicate
     names keep in-group stealing live — with affinity placement on.
     The invariants are the soak's (nothing lost, same-seed replay
     byte-identical) plus the heterogeneity contract: shuffling the
     device multiset over shard ids must not change any per-request
     result. *)
  let n = 20_000 in
  let specs = Traffic.(generate (preset "mixed" ~n ~seed:1337)) in
  let devices = Fleet.parse_devices "w32-hw,w32-sw,w32-hw,w32-sw" in
  let conf = fconf ~shards:4 ~batch:8 ~devices () in
  let t0 = Unix.gettimeofday () in
  let res = Fleet.run conf specs in
  let elapsed = Unix.gettimeofday () -. t0 in
  let m = res.Fleet.metrics in
  Printf.printf
    "fleet-soak (hetero): %d requests, %d launches (%d memoized), %d steals, %d affinity moves, %.1fs host\n%!"
    n m.Metrics.launches res.Fleet.fleet.Fleet.memo_hits
    res.Fleet.fleet.Fleet.steals res.Fleet.fleet.Fleet.affinity_moves elapsed;
  if List.length res.Fleet.reports <> n then
    fail "hetero: %d reports for %d requests" (List.length res.Fleet.reports) n;
  List.iteri
    (fun i (r : Fleet.rq_report) ->
      if r.Fleet.spec.Request.id <> i then
        fail "hetero: report %d carries id %d (duplicate or lost request)" i
          r.Fleet.spec.Request.id)
    res.Fleet.reports;
  let tally =
    m.Metrics.completed + m.Metrics.rejected + m.Metrics.shed
    + m.Metrics.shed_slo + m.Metrics.timed_out + m.Metrics.failed
    + m.Metrics.degraded
  in
  if tally <> n then fail "hetero: outcomes tally to %d, not %d" tally n;
  if m.Metrics.completed = 0 then fail "hetero: nothing completed";
  List.iter
    (fun (s : Metrics.shard_stats) ->
      if s.Metrics.s_queue_max > conf.Fleet.base.Scheduler.queue_bound then
        fail "hetero: shard %d queue peaked at %d (bound %d)" s.Metrics.shard
          s.Metrics.s_queue_max conf.Fleet.base.Scheduler.queue_bound;
      if s.Metrics.s_placed = 0 then
        fail "hetero: shard %d was never placed to (dead device group)"
          s.Metrics.shard)
    res.Fleet.shard_stats;
  if res.Fleet.fleet.Fleet.steals = 0 then
    fail "hetero: in-group stealing never engaged";
  if res.Fleet.fleet.Fleet.affinity_moves = 0 then
    fail "hetero: affinity placement never moved anything off the ring";
  (* same seed, same device order: byte-identical *)
  let res2 = Fleet.run conf specs in
  if not (String.equal (summary_json res) (summary_json res2)) then
    fail "hetero: same-seed replay produced a different summary";
  if
    not
      (String.equal
         (Fleet.results_json res.Fleet.reports)
         (Fleet.results_json res2.Fleet.reports))
  then fail "hetero: same-seed replay produced different per-request results";
  (* the device multiset shuffled over shard ids: per-request results
     must not move a byte (placement keys on device names, not sids) *)
  let shuffled =
    Fleet.run
      { conf with Fleet.devices = Fleet.parse_devices "w32-sw,w32-hw,w32-sw,w32-hw" }
      specs
  in
  if
    not
      (String.equal
         (Fleet.results_json res.Fleet.reports)
         (Fleet.results_json shuffled.Fleet.reports))
  then fail "hetero: shuffling devices over shard ids changed the results"

(* --- 2. tenant fairness under pressure --------------------------------- *)

let fairness_stage () =
  (* a hammering arrival rate over a tight queue: admission has to turn
     work away, and weighted-fair admission decides whose *)
  let profile =
    { (Traffic.preset "steady" ~n:2_000 ~seed:7) with Traffic.mean_gap = 120.0 }
  in
  let specs = Traffic.generate profile in
  let run tenants =
    Fleet.run
      (fconf ~shards:2 ~batch:4 ~queue_bound:4 ~retries:1 ~tenants ())
      specs
  in
  let flat = run [] in
  if flat.Fleet.fleet.Fleet.tenant_evictions = 0 then
    fail "fairness: no evictions under pressure — the scenario is too easy";
  (* alpha is the Zipf-hot tenant: with equal weights it is the
     over-share hog, so it must absorb at least as many evictions as
     anyone else *)
  let alpha = tenant_stat flat "alpha" in
  List.iter
    (fun (t : Metrics.tenant_stats) ->
      if t.Metrics.t_evicted > alpha.Metrics.t_evicted then
        fail "fairness: %s evicted %d times, more than hot tenant alpha (%d)"
          t.Metrics.tenant t.Metrics.t_evicted alpha.Metrics.t_evicted)
    flat.Fleet.tenant_stats;
  (* the lightest tenant must complete at least as large a fraction of
     its requests as the hog it is being protected from *)
  let ratio (t : Metrics.tenant_stats) =
    if t.Metrics.t_requests = 0 then 1.0
    else float_of_int t.Metrics.t_completed /. float_of_int t.Metrics.t_requests
  in
  let delta = tenant_stat flat "delta" in
  if ratio delta < ratio alpha -. 1e-9 then
    fail "fairness: light tenant delta completes %.3f < hot alpha %.3f"
      (ratio delta) (ratio alpha);
  (* a configured weight is real: giving alpha its true share must
     shield it from evictions relative to the flat run *)
  let weighted = run [ ("alpha", 8) ] in
  let alpha_w = tenant_stat weighted "alpha" in
  if alpha_w.Metrics.t_evicted >= alpha.Metrics.t_evicted then
    fail "fairness: weight 8 did not shield alpha (%d evictions vs %d flat)"
      alpha_w.Metrics.t_evicted alpha.Metrics.t_evicted

(* --- 3. per-shard breaker isolation ------------------------------------ *)

let breaker_stage () =
  (* OMPSIMD_WATCHDOG=8000 sits between the fat chain template's
     per-block cycles and every other catalog kernel's (calibrated
     against the seed device): chain launches fail deterministically,
     everything else is untouched.  Stealing off pins chain to its home
     shard, so exactly one breaker may open. *)
  Unix.putenv "OMPSIMD_WATCHDOG" "8000";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "OMPSIMD_WATCHDOG" "";
      Gpusim.Fault.refresh_from_env ())
    (fun () ->
      let spec i ~at kernel size =
        {
          Request.default_spec with
          Request.id = i;
          at;
          kernel;
          size;
          teams = 1;
          threads = 32;
          seed = 1 + (i mod 3);
        }
      in
      let specs =
        List.init 40 (fun i ->
            let at = float_of_int i *. 25_000.0 in
            if i mod 4 = 0 then spec i ~at "chain" 384
            else
              spec i ~at
                (List.nth [ "saxpy"; "rowsum"; "stencil" ] (i mod 3))
                48)
      in
      let res =
        Fleet.run
          (fconf ~shards:4 ~batch:1 ~steal:false ~memo:false ~retries:1
             ~breaker:3 ())
          specs
      in
      let chain, rest =
        List.partition
          (fun (r : Fleet.rq_report) -> r.Fleet.spec.Request.kernel = "chain")
          res.Fleet.reports
      in
      List.iter
        (fun (r : Fleet.rq_report) ->
          if r.Fleet.outcome <> Scheduler.Degraded then
            fail "breaker: chain request %d ended %s, expected degraded"
              r.Fleet.spec.Request.id
              (Scheduler.outcome_to_string r.Fleet.outcome))
        chain;
      List.iter
        (fun (r : Fleet.rq_report) ->
          if r.Fleet.outcome <> Scheduler.Completed then
            fail "breaker: bystander %s request %d ended %s"
              r.Fleet.spec.Request.kernel r.Fleet.spec.Request.id
              (Scheduler.outcome_to_string r.Fleet.outcome))
        rest;
      let chain_shards =
        List.sort_uniq compare
          (List.map (fun (r : Fleet.rq_report) -> r.Fleet.shard) chain)
      in
      (match chain_shards with
      | [ _ ] -> ()
      | l ->
          fail "breaker: chain executed on %d shards without stealing"
            (List.length l));
      let open_shards =
        List.filter
          (fun (s : Metrics.shard_stats) -> s.Metrics.s_breaker_opens > 0)
          res.Fleet.shard_stats
      in
      (match (open_shards, chain_shards) with
      | [ s ], [ home ] when s.Metrics.shard = home -> ()
      | _ ->
          fail
            "breaker: expected exactly chain's home shard to open, got %d \
             open shard(s)"
            (List.length open_shards));
      if res.Fleet.metrics.Metrics.breaker_opens < 1 then
        fail "breaker: never opened";
      if res.Fleet.metrics.Metrics.faults_watchdogs = 0 then
        fail "breaker: the watchdog never fired")

(* --- 3b. armed chaos under autoscaling: the operability soak ----------- *)

let operability_stage () =
  (* Everything at once: a heterogeneous 4-shard fleet, an armed fault
     plan, a flash crowd, SLO-aware admission shedding and the
     autoscaler growing against the SLO.  The no-lost-request tally
     must hold exactly with [Shed_slo] in the books, the telemetry
     stream must replay byte-identically, and scaling must demonstrably
     cut late completions versus the same fleet pinned at its base
     concurrency. *)
  Unix.putenv "OMPSIMD_FAULTS" "abort=0.4,flip=0.3:0.5,stall=0.2";
  Unix.putenv "OMPSIMD_FAULT_SEED" "23";
  Gpusim.Fault.refresh_from_env ();
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "OMPSIMD_FAULTS" "";
      Unix.putenv "OMPSIMD_FAULT_SEED" "";
      Gpusim.Fault.refresh_from_env ())
    (fun () ->
      let n = 4_000 in
      let specs = Traffic.(generate (preset "flash" ~n ~seed:23)) in
      let devices = Fleet.parse_devices "w32-hw,w32-sw,w32-hw,w32-sw" in
      let slo = 8_000.0 in
      let autoscale =
        {
          Serve.Autoscale.enabled = true;
          slo;
          budget = 8;
          max_extra = 6;
          down = 0.5;
          cooldown = 2;
        }
      in
      let conf =
        fconf ~shards:4 ~batch:8 ~devices ~slo ~telemetry:true ~shed:true
          ~autoscale ()
      in
      let res = Fleet.run conf specs in
      let m = res.Fleet.metrics in
      Printf.printf
        "fleet-soak (operability): %d requests, %d shed-slo, %d violations, %d grows, %d shrinks, %d reopens\n%!"
        n m.Metrics.shed_slo m.Metrics.slo_violations
        m.Metrics.autoscale_grows m.Metrics.autoscale_shrinks
        m.Metrics.breaker_reopens;
      if List.length res.Fleet.reports <> n then
        fail "operability: %d reports for %d requests"
          (List.length res.Fleet.reports) n;
      List.iteri
        (fun i (r : Fleet.rq_report) ->
          if r.Fleet.spec.Request.id <> i then
            fail "operability: report %d carries id %d" i
              r.Fleet.spec.Request.id)
        res.Fleet.reports;
      let tally =
        m.Metrics.completed + m.Metrics.rejected + m.Metrics.shed
        + m.Metrics.shed_slo + m.Metrics.timed_out + m.Metrics.failed
        + m.Metrics.degraded
      in
      if tally <> n then fail "operability: outcomes tally to %d, not %d" tally n;
      if m.Metrics.faults_fatal + m.Metrics.faults_corrected = 0 then
        fail "operability: the armed plan injected nothing";
      if String.length res.Fleet.telemetry = 0 then
        fail "operability: telemetry stream is empty";
      (* same seed, same fleet: the telemetry JSONL replays to the byte *)
      let res2 = Fleet.run conf specs in
      if not (String.equal res.Fleet.telemetry res2.Fleet.telemetry) then
        fail "operability: telemetry did not replay byte-identically";
      if not (String.equal (summary_json res) (summary_json res2)) then
        fail "operability: same-seed replay produced a different summary";
      (* the recorded comparison: shedding off in both arms, autoscaler
         on vs off — scaling must grow under the crowd and strictly cut
         SLO violations *)
      let arm auto =
        (Fleet.run
           { conf with Fleet.telemetry = false; shed = false; autoscale = auto }
           specs)
          .Fleet.metrics
      in
      let scaled = arm autoscale and fixed = arm Serve.Autoscale.disabled in
      if scaled.Metrics.autoscale_grows = 0 then
        fail "operability: the autoscaler never grew under the flash crowd";
      if fixed.Metrics.autoscale_grows <> 0 then
        fail "operability: the disabled arm scaled";
      if scaled.Metrics.slo_violations >= fixed.Metrics.slo_violations then
        fail
          "operability: autoscaling did not reduce SLO violations (%d vs %d \
           fixed)"
          scaled.Metrics.slo_violations fixed.Metrics.slo_violations;
      Printf.printf
        "fleet-soak (operability): autoscale on/off violations %d/%d\n%!"
        scaled.Metrics.slo_violations fixed.Metrics.slo_violations)

(* --- 4. throughput: the batched fleet vs the single device ------------- *)

let throughput_stage () =
  (* the bench's compile-heavy chain trace: three distinct digests over
     thirty requests, arrivals faster than one device drains them *)
  let specs =
    List.init 30 (fun i ->
        {
          Request.default_spec with
          Request.id = i;
          at = float_of_int i *. 1500.0;
          kernel = "chain";
          size = 256 + (256 * (i mod 3));
          seed = 1 + (i mod 5);
        })
  in
  let classic_conf = base () in
  let _, classic = Scheduler.run classic_conf specs in
  let fleet = (Fleet.run (fconf ~shards:4 ~batch:8 ()) specs).Fleet.metrics in
  if Metrics.throughput fleet <= Metrics.throughput classic then
    fail "throughput: fleet %.2f req/Mtick <= single device %.2f"
      (Metrics.throughput fleet) (Metrics.throughput classic);
  (* batching pays at equal resources too: one shard, same servers,
     merged grids vs solo launches *)
  let batched =
    (Fleet.run (fconf ~shards:1 ~batch:8 ~memo:false ()) specs).Fleet.metrics
  in
  let solo =
    (Fleet.run (fconf ~shards:1 ~batch:1 ~memo:false ()) specs).Fleet.metrics
  in
  if batched.Metrics.makespan >= solo.Metrics.makespan then
    fail "throughput: batching did not shorten the backlog (%.1f vs %.1f)"
      batched.Metrics.makespan solo.Metrics.makespan

let () =
  soak_stage ();
  hetero_stage ();
  fairness_stage ();
  breaker_stage ();
  operability_stage ();
  throughput_stage ();
  if !failures > 0 then begin
    Printf.eprintf "fleet-soak: %d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "fleet-soak: all stages passed"
