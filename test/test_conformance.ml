(* Conformance suite, libomptarget-style: kernels written as source files
   (test/conformance/*.omp) go through the full pipeline — parse, check,
   optimize, outline — and execute on the device under a matrix of
   execution configurations.  Every run is compared against the
   sequential host interpreter on identical data, so a pass means the
   whole stack agreed with the language semantics. *)

module Memory = Gpusim.Memory
module Mode = Omprt.Mode
module Eval = Ompir.Eval
module Hosteval = Ompir.Hosteval

let cfg = Gpusim.Config.small
let check_bool = Alcotest.check Alcotest.bool

(* Deterministic input data per parameter kind/name. *)
let make_bindings ~sizes (k : Ompir.Ir.kernel) =
  let space = Memory.space () in
  let g = Ompsimd_util.Prng.create ~seed:2024 in
  List.map
    (fun (p : Ompir.Ir.param) ->
      let binding =
        match p.Ompir.Ir.pty with
        | Ompir.Ir.P_farray ->
            let n = List.assoc p.Ompir.Ir.pname sizes in
            Eval.B_farr
              (Memory.of_float_array space
                 (Array.init n (fun _ -> Ompsimd_util.Prng.float g 4.0 -. 2.0)))
        | Ompir.Ir.P_iarray ->
            let n = List.assoc p.Ompir.Ir.pname sizes in
            Eval.B_iarr
              (Memory.of_int_array space
                 (Array.init n (fun _ -> Ompsimd_util.Prng.int g 100)))
        | Ompir.Ir.P_int -> Eval.B_int (List.assoc p.Ompir.Ir.pname sizes)
        | Ompir.Ir.P_float -> Eval.B_float 1.75
      in
      (p.Ompir.Ir.pname, binding))
    k.Ompir.Ir.params

let float_arrays bindings =
  List.filter_map
    (fun (name, b) ->
      match b with
      | Eval.B_farr a -> Some (name, Memory.to_float_array a)
      | _ -> None)
    bindings

let close a b =
  Array.for_all2
    (fun x y ->
      let scale = Float.max 1.0 (Float.max (abs_float x) (abs_float y)) in
      abs_float (x -. y) <= 1e-9 *. scale)
    a b

(* One conformance case: file + per-parameter sizes (scalars get their
   value, arrays their length). *)
type case = { file : string; sizes : (string * int) list }

let cases =
  [
    { file = "saxpy.omp"; sizes = [ ("x", 96); ("y", 96); ("n", 96) ] };
    {
      file = "atomic_histogram.omp";
      sizes = [ ("data", 64); ("bins", 8); ("n", 64) ];
    };
    {
      file = "reduction_dot.omp";
      sizes = [ ("a", 15 * 11); ("b", 15 * 11); ("out", 15); ("rows", 15); ("width", 11) ];
    };
    {
      file = "guarded_rowinit.omp";
      sizes = [ ("marks", 13); ("out", 13 * 6); ("rows", 13); ("width", 6) ];
    };
    {
      file = "schedules.omp";
      sizes = [ ("out", 17 * 9); ("rows", 17); ("width", 9) ];
    };
    { file = "nested_for.omp"; sizes = [ ("x", 40); ("out", 40); ("n", 40) ] };
    {
      file = "conditionals.omp";
      sizes = [ ("x", 50); ("out", 50); ("n", 50) ];
    };
    { file = "intrinsics.omp"; sizes = [ ("x", 30); ("out", 30); ("n", 30) ] };
    { file = "two_regions.omp"; sizes = [ ("a", 60); ("b", 60); ("n", 60) ] };
    {
      file = "collapse_manual.omp";
      sizes = [ ("src", 7 * 9); ("dst", 7 * 9); ("ni", 7); ("nj", 9) ];
    };
  ]

let configurations =
  [
    ("spmd/1", `Force Mode.Spmd, 1, false);
    ("spmd/8", `Force Mode.Spmd, 8, true);
    ("generic/8", `Force Mode.Generic, 8, false);
    ("generic/32", `Force Mode.Generic, 32, false);
    ("auto/4+guards", `Auto, 4, true);
  ]

(* Forcing SPMD is only sound when the kernel has no unguarded sequential
   side effects; guardize repairs that. *)
let sound kernel parallel_mode guardize =
  match parallel_mode with
  | `Force Mode.Spmd -> guardize || Ompir.Spmdize.all_spmd kernel
  | `Force Mode.Generic | `Auto -> true

let conformance_dir = "conformance"

let run_case case () =
  let path = Filename.concat conformance_dir case.file in
  let kernel = Ompir.Parse.kernel_of_file path in
  (match Ompir.Check.kernel kernel with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "%s: check failed: %s" case.file
        (String.concat "; "
           (List.map (fun (e : Ompir.Check.error) -> e.Ompir.Check.what) es)));
  List.iter
    (fun (label, parallel_mode, simd_len, guardize) ->
      if sound kernel parallel_mode guardize then begin
        (* host reference on fresh data *)
        let host_bindings = make_bindings ~sizes:case.sizes kernel in
        Hosteval.run ~bindings:host_bindings kernel;
        (* device on identical fresh data, through the full pipeline *)
        let dev_bindings = make_bindings ~sizes:case.sizes kernel in
        let compiled =
          match Openmp.Offload.compile ~guardize kernel with
          | Ok c -> c
          | Error _ -> Alcotest.failf "%s: compile failed" case.file
        in
        let clauses =
          let base =
            Openmp.Clause.(none |> num_teams 3 |> num_threads 64 |> simdlen simd_len)
          in
          match parallel_mode with
          | `Force m -> Openmp.Clause.parallel_mode m base
          | `Auto -> base
        in
        let (_ : Gpusim.Device.report) =
          Openmp.Offload.run ~cfg ~clauses ~bindings:dev_bindings compiled
        in
        List.iter2
          (fun (name, host) (_, dev) ->
            check_bool
              (Printf.sprintf "%s [%s] array %s" case.file label name)
              true (close host dev))
          (float_arrays host_bindings) (float_arrays dev_bindings)
      end)
    configurations

(* print -> reparse fixpoint: the pretty-printer emits concrete syntax
   the parser accepts, and the reparse evaluates identically *)
let run_roundtrip case () =
  let path = Filename.concat conformance_dir case.file in
  let kernel = Ompir.Parse.kernel_of_file path in
  let printed = Ompir.Printer.kernel_to_string kernel in
  let reparsed =
    try Ompir.Parse.kernel printed
    with Ompir.Parse.Syntax_error { line; message } ->
      Alcotest.failf "%s: reparse failed at line %d: %s\n%s" case.file line
        message printed
  in
  (match Ompir.Check.kernel reparsed with
  | Ok () -> ()
  | Error _ -> Alcotest.failf "%s: reparsed kernel fails check" case.file);
  (* identical behaviour on the host interpreter *)
  let b1 = make_bindings ~sizes:case.sizes kernel in
  Hosteval.run ~bindings:b1 kernel;
  let b2 = make_bindings ~sizes:case.sizes reparsed in
  Hosteval.run ~bindings:b2 reparsed;
  List.iter2
    (fun (name, host) (_, dev) ->
      check_bool (Printf.sprintf "%s roundtrip array %s" case.file name) true
        (close host dev))
    (float_arrays b1) (float_arrays b2)

let suite =
  [
    ( "conformance",
      List.map
        (fun case -> Alcotest.test_case case.file `Quick (run_case case))
        cases );
    ( "conformance.roundtrip",
      List.map
        (fun case ->
          Alcotest.test_case case.file `Quick (run_roundtrip case))
        cases );
  ]
