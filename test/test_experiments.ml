(* Structural tests over the experiment harnesses: each experiment must
   produce the right series shape and reproduce the paper's qualitative
   orderings at reduced scale. *)

module Config = Gpusim.Config
module Fig9 = Experiments.Fig9
module Fig10 = Experiments.Fig10
module Sharing_ablation = Experiments.Sharing_ablation
module Dispatch_ablation = Experiments.Dispatch_ablation
module Amd_mode = Experiments.Amd_mode
module Reduction_ablation = Experiments.Reduction_ablation
module Teams_mode_ablation = Experiments.Teams_mode_ablation
module Spmdization_ablation = Experiments.Spmdization_ablation
module Schedule_ablation = Experiments.Schedule_ablation

let cfg = Config.small
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

(* fig9 at reduced scale: slow but bounded; share one run *)
let fig9_result = lazy (Fig9.run ~scale:0.25 ~cfg ())

let test_fig9_shape () =
  let r = Lazy.force fig9_result in
  check_int "3 kernels x 5 group sizes" 15 (List.length r.Fig9.rows);
  List.iter
    (fun (row : Fig9.row) ->
      check_bool "positive cycles" true
        (row.Fig9.baseline_cycles > 0.0 && row.Fig9.simd_cycles > 0.0))
    r.Fig9.rows

let test_fig9_simd_wins () =
  let r = Lazy.force fig9_result in
  List.iter
    (fun kernel ->
      let best = Fig9.best r ~kernel in
      check_bool
        (Printf.sprintf "%s best simd beats baseline" kernel)
        true (best.Fig9.speedup > 1.0))
    [ "sparse_matvec"; "su3_bench"; "ideal_kernel" ]

let test_fig9_spmv_bell () =
  (* the paper's crossover: mid group sizes beat the extremes *)
  let r = Lazy.force fig9_result in
  let speedup gs =
    let row =
      List.find
        (fun (x : Fig9.row) ->
          x.Fig9.kernel = "sparse_matvec" && x.Fig9.group_size = gs)
        r.Fig9.rows
    in
    row.Fig9.speedup
  in
  check_bool "8 beats 2" true (speedup 8 > speedup 2);
  check_bool "8 beats 32" true (speedup 8 > speedup 32)

let test_fig9_dedup_identical () =
  (* the homogeneous-grid fast path must not change a single digit *)
  let plain = Lazy.force fig9_result in
  let dedup = Fig9.run ~scale:0.25 ~dedup:true ~cfg () in
  Alcotest.check Alcotest.string "csv identical under dedup"
    (Fig9.to_csv plain) (Fig9.to_csv dedup)

let fig10_result = lazy (Fig10.run ~scale:0.5 ~cfg ())

let test_fig10_shape () =
  let r = Lazy.force fig10_result in
  check_int "3 kernels x 3 modes" 9 (List.length r.Fig10.rows);
  List.iter
    (fun kernel ->
      Alcotest.check (Alcotest.float 1e-9) "baseline is 1.0" 1.0
        (Fig10.relative r ~kernel Fig10.No_simd))
    [ "laplace3d"; "muram_transpose"; "muram_interpol" ]

let test_fig10_generic_trails_spmd () =
  let r = Lazy.force fig10_result in
  List.iter
    (fun kernel ->
      let spmd = Fig10.relative r ~kernel Fig10.Spmd_simd in
      let generic = Fig10.relative r ~kernel Fig10.Generic_simd in
      check_bool
        (Printf.sprintf "%s: generic slower than spmd" kernel)
        true
        (generic < spmd))
    [ "laplace3d"; "muram_transpose"; "muram_interpol" ]

let test_sharing_ablation () =
  let r = Sharing_ablation.run ~scale:0.25 ~cfg () in
  check_int "3 sizes x 5 groups" 15 (List.length r.Sharing_ablation.rows);
  (* larger reservations never fall back more often at the same group size *)
  List.iter
    (fun gs ->
      let fallbacks bytes =
        let row =
          List.find
            (fun (x : Sharing_ablation.row) ->
              x.Sharing_ablation.sharing_bytes = bytes
              && x.Sharing_ablation.group_size = gs)
            r.Sharing_ablation.rows
        in
        row.Sharing_ablation.fallbacks
      in
      check_bool "monotone in reservation" true
        (fallbacks 256 >= fallbacks 1024 && fallbacks 1024 >= fallbacks 2048))
    [ 2; 4; 8; 16; 32 ];
  let find bytes gs =
    List.find
      (fun (x : Sharing_ablation.row) ->
        x.Sharing_ablation.sharing_bytes = bytes
        && x.Sharing_ablation.group_size = gs)
      r.Sharing_ablation.rows
  in
  (* a genuinely undersized slab still overflows: the per-block wave of
     96-byte payloads peaks above 256 B *)
  check_bool "256B/gs8 falls back" true
    ((find 256 8).Sharing_ablation.fallbacks > 0.0);
  (* the dynamic allocator's win: a 12-arg payload overflowed the old
     static 1024/17-byte slice, but the live regions fit 1024 B when
     granted on demand *)
  check_bool "1024B/gs8 static slice too small" true
    ((find 1024 8).Sharing_ablation.slice_bytes < 96);
  check_bool "1024B/gs8 fits dynamically" true
    ((find 1024 8).Sharing_ablation.fallbacks = 0.0);
  (* the paper's enlarged reservation is roomy either way *)
  check_bool "2048B/gs8 fits" true
    ((find 2048 8).Sharing_ablation.fallbacks = 0.0)

let test_dispatch_ablation () =
  let r = Dispatch_ablation.run ~scale:0.25 ~cfg () in
  (* within each table size: deeper cascade entries cost more, and the
     indirect fallback costs more than the front entry *)
  List.iter
    (fun table_size ->
      let rows =
        List.filter
          (fun (x : Dispatch_ablation.row) ->
            x.Dispatch_ablation.table_size = table_size)
          r.Dispatch_ablation.rows
      in
      let cycles fn_id =
        (List.find
           (fun (x : Dispatch_ablation.row) -> x.Dispatch_ablation.fn_id = fn_id)
           rows)
          .Dispatch_ablation.cycles
      in
      check_bool "indirect > front entry" true (cycles (-1) > cycles 0);
      if table_size > 1 then
        check_bool "cascade cost grows" true
          (cycles (table_size - 1) > cycles 0))
    [ 1; 8; 32 ]

let test_amd_mode () =
  let r = Amd_mode.run ~scale:0.02 () in
  let speedup device mode kernel =
    (List.find
       (fun (x : Amd_mode.row) ->
         x.Amd_mode.device = device && x.Amd_mode.mode = mode
         && x.Amd_mode.kernel = kernel)
       r.Amd_mode.rows)
      .Amd_mode.speedup
  in
  List.iter
    (fun kernel ->
      (* on AMD the generic mode loses (sequential simd loops) while
         SPMD survives at NVIDIA-like speedups *)
      check_bool "amd generic loses its benefit" true
        (speedup "sim-amd" "generic-SIMD" kernel
        < speedup "sim-amd" "SPMD-SIMD" kernel);
      check_bool "amd spmd close to nvidia spmd" true
        (abs_float
           (speedup "sim-amd" "SPMD-SIMD" kernel
           -. speedup "sim-a100" "SPMD-SIMD" kernel)
        < 0.5))
    [ "sparse_matvec"; "ideal_kernel" ]

let test_reduction_ablation () =
  let r = Reduction_ablation.run ~scale:0.1 ~cfg () in
  check_int "5 group sizes" 5 (List.length r.Reduction_ablation.rows);
  List.iter
    (fun (row : Reduction_ablation.row) ->
      check_bool "reduction never slower" true
        (row.Reduction_ablation.improvement >= 0.95))
    r.Reduction_ablation.rows

let test_teams_mode_ablation () =
  let r = Teams_mode_ablation.run ~scale:0.1 ~cfg () in
  match r.Teams_mode_ablation.rows with
  | [ spmd; generic ] ->
      check_bool "extra warp" true
        (generic.Teams_mode_ablation.block_threads
        = spmd.Teams_mode_ablation.block_threads + 32);
      check_bool "occupancy drops" true
        (generic.Teams_mode_ablation.resident_blocks
        <= spmd.Teams_mode_ablation.resident_blocks)
  | _ -> Alcotest.fail "two rows expected"

let test_spmdization_ablation () =
  let r = Spmdization_ablation.run ~scale:0.25 ~cfg () in
  match r.Spmdization_ablation.rows with
  | [ generic; guarded; tight ] ->
      check_bool "guard inserted" true (guarded.Spmdization_ablation.guards > 0);
      (* §6.5's ordering: tight >= guarded > generic *)
      check_bool "guarded beats generic" true
        (guarded.Spmdization_ablation.cycles < generic.Spmdization_ablation.cycles);
      check_bool "tight at least as good as guarded" true
        (tight.Spmdization_ablation.cycles
        <= guarded.Spmdization_ablation.cycles *. 1.02)
  | _ -> Alcotest.fail "three variants expected"

let test_schedule_ablation () =
  let r = Schedule_ablation.run ~scale:0.25 ~cfg () in
  let rel matrix schedule =
    (List.find
       (fun (x : Schedule_ablation.row) ->
         x.Schedule_ablation.matrix = matrix
         && x.Schedule_ablation.schedule = schedule)
       r.Schedule_ablation.rows)
      .Schedule_ablation.relative
  in
  check_bool "dynamic wins under imbalance" true
    (rel "power-law" "dynamic,1" > 1.0);
  check_bool "dynamic pays on uniform work" true
    (rel "uniform" "dynamic,1" < 1.05)

(* zoo sweep smoke: one swept device at tiny scale must produce a
   verdict per claim, each with per-kernel detail, and inversions must
   agree with the holds flags.  w32-hw is the paper's own shape, so all
   three claims are expected to hold there. *)
let test_zoo_sweep_smoke () =
  let entries =
    List.filter
      (fun (e : Gpusim.Zoo.entry) -> e.Gpusim.Zoo.name = "w32-hw")
      Gpusim.Zoo.sweep
  in
  check_int "w32-hw exists" 1 (List.length entries);
  let t = Experiments.Zoo_sweep.run ~scale:0.1 ~entries () in
  check_int "one row" 1 (List.length t.Experiments.Zoo_sweep.rows);
  let row = List.hd t.Experiments.Zoo_sweep.rows in
  Alcotest.(check (list string))
    "verdict labels follow the claim list" Experiments.Zoo_sweep.claims
    (List.map
       (fun (v : Experiments.Zoo_sweep.verdict) -> v.Experiments.Zoo_sweep.claim)
       row.Experiments.Zoo_sweep.verdicts);
  List.iter
    (fun (v : Experiments.Zoo_sweep.verdict) ->
      check_bool
        (v.Experiments.Zoo_sweep.claim ^ " has detail")
        true
        (String.length v.Experiments.Zoo_sweep.detail > 0);
      check_bool
        (v.Experiments.Zoo_sweep.claim ^ " holds on the paper shape")
        true v.Experiments.Zoo_sweep.holds)
    row.Experiments.Zoo_sweep.verdicts;
  check_int "no inversions on w32-hw" 0
    (List.length (Experiments.Zoo_sweep.inversions t))

let suite =
  [
    ( "experiments.fig9",
      [
        Alcotest.test_case "shape" `Slow test_fig9_shape;
        Alcotest.test_case "simd wins" `Slow test_fig9_simd_wins;
        Alcotest.test_case "spmv bell" `Slow test_fig9_spmv_bell;
        Alcotest.test_case "dedup identical" `Slow test_fig9_dedup_identical;
      ] );
    ( "experiments.fig10",
      [
        Alcotest.test_case "shape" `Slow test_fig10_shape;
        Alcotest.test_case "generic trails spmd" `Slow
          test_fig10_generic_trails_spmd;
      ] );
    ( "experiments.ablations",
      [
        Alcotest.test_case "sharing (E3)" `Slow test_sharing_ablation;
        Alcotest.test_case "dispatch (E4)" `Slow test_dispatch_ablation;
        Alcotest.test_case "amd (E5)" `Slow test_amd_mode;
        Alcotest.test_case "reduction (E6)" `Slow test_reduction_ablation;
        Alcotest.test_case "teams mode (E7)" `Slow test_teams_mode_ablation;
        Alcotest.test_case "spmdization (E8)" `Slow test_spmdization_ablation;
        Alcotest.test_case "schedule (E9)" `Slow test_schedule_ablation;
      ] );
    ( "experiments.zoo",
      [ Alcotest.test_case "sweep smoke" `Quick test_zoo_sweep_smoke ] );
  ]
