(* Runtest tier for the sanitizer, exercised exactly the way a user
   enables it: OMPSIMD_SANITIZE in the environment, kernels through the
   text pipeline, both eval engines.  Two stages:

   1. known-answer conformance kernels (a true global race, a cross-group
      guarded race, a race-free atomic pattern) must produce their
      expected verdicts with site provenance under both engines;
   2. a small certified-random fleet: one kernel template with a
      switchable race plant, swept over geometries by a deterministic
      LCG — the sanitizer must report exactly the planted runs, and the
      static may-race layer must agree. *)

module Ir = Ompir.Ir
module Eval = Ompir.Eval
module Memory = Gpusim.Memory
module Ompsan = Gpusim.Ompsan
module Offload = Openmp.Offload
module Clause = Openmp.Clause
module Mode = Omprt.Mode

let cfg = Gpusim.Config.small
let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "sanitizer-fleet FAIL: %s\n%!" msg)
    fmt

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let engines = [ "walk"; "compile" ]

let zero_bindings ~sizes (k : Ir.kernel) =
  let space = Memory.space () in
  List.map
    (fun (p : Ir.param) ->
      let b =
        match p.Ir.pty with
        | Ir.P_farray -> Eval.B_farr (Memory.falloc space (List.assoc p.Ir.pname sizes))
        | Ir.P_iarray -> Eval.B_iarr (Memory.ialloc space (List.assoc p.Ir.pname sizes))
        | Ir.P_int -> Eval.B_int (List.assoc p.Ir.pname sizes)
        | Ir.P_float -> Eval.B_float 1.0
      in
      (p.Ir.pname, b))
    k.Ir.params

let run_file ~engine ~clauses ~sizes file =
  let kernel = Ompir.Parse.kernel_of_file (Filename.concat "conformance" file) in
  match Offload.compile ~racecheck:true kernel with
  | Error _ -> failwith (file ^ ": compile failed")
  | Ok c ->
      Unix.putenv "OMPSIMD_SANITIZE" "1";
      Unix.putenv "OMPSIMD_EVAL" engine;
      let report =
        Offload.run ~cfg ~clauses ~bindings:(zero_bindings ~sizes kernel) c
      in
      (c, report)

let expect_verdict ~engine ~clauses ~sizes ~dirty ~site file =
  let c, report = run_file ~engine ~clauses ~sizes file in
  (match report.Gpusim.Device.sanitizer with
  | None -> fail "%s [%s]: no sanitizer report" file engine
  | Some san ->
      if Ompsan.is_clean san = dirty then
        fail "%s [%s]: expected dirty=%b, got:\n  %s" file engine dirty
          (String.concat "\n  " (Ompsan.report_strings san));
      if dirty then begin
        match site with
        | Some s
          when not
                 (List.exists
                    (fun line -> contains line s)
                    (Ompsan.report_strings san)) ->
            fail "%s [%s]: no finding mentions %S" file engine s
        | _ -> ()
      end);
  (* the static layer must agree with the dynamic verdict *)
  if c.Offload.may_races <> [] <> dirty then
    fail "%s: static layer disagrees (dirty=%b)" file dirty

let conformance_stage () =
  List.iter
    (fun engine ->
      expect_verdict ~engine
        ~clauses:
          Clause.(
            none |> num_teams 2 |> num_threads 32 |> simdlen 8
            |> parallel_mode Mode.Spmd)
        ~sizes:[ ("out", 64); ("n", 64) ]
        ~dirty:true ~site:(Some "store out[i]") "race_global.omp";
      expect_verdict ~engine
        ~clauses:
          Clause.(
            none |> num_teams 2 |> num_threads 32 |> simdlen 8
            |> parallel_mode Mode.Spmd)
        ~sizes:[ ("marks", 4); ("out", 64); ("rows", 8); ("width", 8) ]
        ~dirty:true ~site:(Some "store marks[0]") "race_sharing.omp";
      expect_verdict ~engine
        ~clauses:
          Clause.(
            none |> num_teams 2 |> num_threads 32 |> simdlen 4
            |> parallel_mode Mode.Spmd)
        ~sizes:[ ("bins", 4); ("data", 64); ("n", 64) ]
        ~dirty:false ~site:None "atomic_clean.omp")
    engines

(* --- certified-random fleet ------------------------------------------- *)

(* rowstore template: canonical disjoint stores, plus (when planted) a
   j-invariant store that races across the lanes of each SIMD group. *)
let template ~plant ~width =
  let open Ir in
  let idx = Binop (Add, Binop (Mul, Var "r", Int_lit width), Var "j") in
  let body =
    [ Store ("out", idx, Load ("src", Binop (Mod, idx, Var "n"))) ]
    @
    if plant then
      [ Store ("out", Binop (Mul, Var "r", Int_lit width), Var "r_f") ]
    else []
  in
  kernel ~name:(if plant then "planted" else "clean")
    ~params:
      [
        { pname = "src"; pty = P_farray };
        { pname = "out"; pty = P_farray };
        { pname = "rows"; pty = P_int };
        { pname = "n"; pty = P_int };
      ]
    [
      distribute_parallel_for ~var:"r" ~lo:(Int_lit 0) ~hi:(Var "rows")
        [
          Decl { name = "r_f"; ty = Tfloat; init = Float_lit 0.0 };
          simd ~var:"j" ~lo:(Int_lit 0) ~hi:(Int_lit width) body;
        ];
    ]

let fleet_stage () =
  let lcg = ref 0x5eed1 in
  let next m =
    lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
    !lcg mod m
  in
  for case = 0 to 23 do
    let plant = case mod 2 = 0 in
    let width = List.nth [ 4; 8; 16 ] (next 3) in
    let rows = 2 + next 12 in
    let teams = 1 + next 3 in
    let threads = List.nth [ 32; 64 ] (next 2) in
    (* plants need >= 2 lanes per group to collide *)
    let slen = List.nth [ 2; 4; 8 ] (next 3) in
    let engine = List.nth engines (next 2) in
    let kernel = template ~plant ~width in
    let n = rows * width in
    match Offload.compile ~racecheck:true kernel with
    | Error _ -> fail "fleet case %d: compile failed" case
    | Ok c ->
        if c.Offload.may_races <> [] <> plant then
          fail "fleet case %d: static verdict != plant=%b" case plant;
        Unix.putenv "OMPSIMD_SANITIZE" "1";
        Unix.putenv "OMPSIMD_EVAL" engine;
        let clauses =
          Clause.(
            none |> num_teams teams |> num_threads threads |> simdlen slen)
        in
        let report =
          Offload.run ~cfg ~clauses
            ~bindings:
              (zero_bindings ~sizes:[ ("src", n); ("out", n); ("rows", rows); ("n", n) ]
                 kernel)
            c
        in
        (match report.Gpusim.Device.sanitizer with
        | None -> fail "fleet case %d: no sanitizer report" case
        | Some san ->
            if Ompsan.is_clean san = plant then
              fail "fleet case %d: dynamic verdict != plant=%b (%s)" case plant
                (String.concat "; " (Ompsan.report_strings san)))
  done

let () =
  conformance_stage ();
  fleet_stage ();
  if !failures > 0 then begin
    Printf.eprintf "sanitizer-fleet: %d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline
    "sanitizer-fleet OK: conformance verdicts and 24-case certified fleet \
     hold under both engines"
