(* Ompfault suite: deterministic fault injection, the device watchdog
   and serve-layer recovery.

   The contract under test: with OMPSIMD_FAULTS unset every report is
   bit-identical to a faultless build; with a plan armed, the injected
   faults — and therefore the structured failure reports — are a pure
   function of (seed, launch nonce, block id), so they replay
   identically across both evaluation engines and any pool width; and
   the serve layer never loses a request to a device fault: it ends
   Completed (possibly after relaunches) or explicitly Degraded. *)

module Memory = Gpusim.Memory
module Counters = Gpusim.Counters
module Fault = Gpusim.Fault
module Device = Gpusim.Device
module Offload = Openmp.Offload
module Clause = Openmp.Clause
module Scheduler = Serve.Scheduler
module Request = Serve.Request
module Metrics = Serve.Metrics
module Mode = Omprt.Mode
module Payload = Omprt.Payload
module Team = Omprt.Team
module Workshare = Omprt.Workshare
module Simd = Omprt.Simd
module Parallel = Omprt.Parallel
module Target = Omprt.Target

let cfg = Gpusim.Config.small
let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* The fault knobs are read from the environment at launch time, so the
   tests drive them the way a user would.  Always restore and re-sync
   the cached plan in [finally]: later suites (and the experiment
   launches, which refresh nothing) must run disarmed. *)
let with_env pairs f =
  let old =
    List.map
      (fun (k, _) -> (k, Option.value (Sys.getenv_opt k) ~default:""))
      pairs
  in
  List.iter (fun (k, v) -> Unix.putenv k v) pairs;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (k, v) -> Unix.putenv k v) old;
      Fault.refresh_from_env ())
    f

let spec ?(at = 0.0) ?(kernel = "saxpy") ?(size = 64) ?(teams = 4)
    ?(threads = 32) ?(simdlen = 8) ?deadline ?(priority = 0) ?(seed = 1) id =
  {
    Request.id;
    at;
    kernel;
    size;
    teams;
    threads;
    simdlen;
    guardize = false;
    deadline;
    priority;
    seed;
    tenant = "-";
    device = None;
  }

(* One device-level launch of a serve catalog template: the same
   instantiate/compile/run path the service takes, minus the service. *)
let launch ?pool s =
  let kernel, bindings, out = Request.instantiate s in
  let compiled =
    match Offload.compile_with ~knobs:Offload.default_knobs kernel with
    | Ok c -> c
    | Error _ -> Alcotest.fail "catalog kernel failed to compile"
  in
  let clauses =
    Clause.(
      none
      |> num_teams s.Request.teams
      |> num_threads s.Request.threads
      |> simdlen s.Request.simdlen)
  in
  let report = Offload.run ~cfg ?pool ~clauses ~bindings compiled in
  (report, Request.checksum out)

let failure_lines (r : Device.report) =
  List.map Fault.failure_to_string r.Device.failures

let stats_str (s : Fault.stats) =
  Printf.sprintf "corrected=%d fatal=%d stalls=%d exhausts=%d watchdogs=%d"
    s.Fault.corrected s.Fault.fatal s.Fault.stalls s.Fault.exhausts
    s.Fault.watchdogs

let pp_str r = Format.asprintf "%a" Device.pp_report r

let blank_fault_env =
  [
    ("OMPSIMD_FAULTS", "");
    ("OMPSIMD_FAULT_SEED", "");
    ("OMPSIMD_WATCHDOG", "");
  ]

(* ------------------------------------------------------------------ *)
(* Disarmed: bit-identical to a faultless build                        *)
(* ------------------------------------------------------------------ *)

let test_disarmed_identity () =
  with_env blank_fault_env (fun () ->
      let report, _ = launch (spec 0) in
      check_int "no failures" 0 (List.length report.Device.failures);
      Alcotest.(check string)
        "fault stats all zero"
        (stats_str Fault.zero_stats)
        (stats_str report.Device.faults);
      check_bool "pp_report omits the fault block" false
        (contains (pp_str report) "faults:");
      check_bool "deadlock capture stays off" false (Fault.capture_deadlocks ()))

(* ------------------------------------------------------------------ *)
(* Determinism: same seed, same faults, every engine x pool            *)
(* ------------------------------------------------------------------ *)

let chaos_env =
  [
    ("OMPSIMD_FAULTS", "abort=0.5,flip=0.35:0.5,stall=0.25");
    ("OMPSIMD_FAULT_SEED", "42");
  ]

let test_fixed_seed_invariance () =
  let run ?pool engine =
    with_env (("OMPSIMD_EVAL", engine) :: chaos_env) (fun () ->
        Fault.reset ();
        let report, sum = launch ?pool (spec ~kernel:"rowsum" ~teams:6 0) in
        ( failure_lines report,
          stats_str report.Device.faults,
          Int64.bits_of_float sum ))
  in
  let pool = Gpusim.Pool.create ~domains:3 () in
  let staged_seq = run "compile" in
  let staged_pool = run ~pool "compile" in
  let walk_seq = run "walk" in
  let walk_pool = run ~pool "walk" in
  let lines, _, _ = staged_seq in
  check_bool "the plan actually injected something" true (lines <> []);
  let t =
    Alcotest.(triple (list string) string int64)
  in
  Alcotest.check t "pool matches sequential" staged_seq staged_pool;
  Alcotest.check t "walk engine matches staged" staged_seq walk_seq;
  Alcotest.check t "walk + pool matches too" staged_seq walk_pool;
  (* reset rewinds the launch nonce: an in-place replay is identical *)
  let replay =
    with_env (("OMPSIMD_EVAL", "compile") :: chaos_env) (fun () ->
        Fault.reset ();
        let r1, s1 = launch (spec ~kernel:"rowsum" ~teams:6 0) in
        Fault.reset ();
        let r2, s2 = launch (spec ~kernel:"rowsum" ~teams:6 0) in
        ( (failure_lines r1, stats_str r1.Device.faults, Int64.bits_of_float s1),
          (failure_lines r2, stats_str r2.Device.faults, Int64.bits_of_float s2)
        ))
  in
  Alcotest.check t "reset replays the identical faults" (fst replay)
    (snd replay)

(* ------------------------------------------------------------------ *)
(* The injection kinds                                                 *)
(* ------------------------------------------------------------------ *)

let test_abort () =
  with_env [ ("OMPSIMD_FAULTS", "abort=1"); ("OMPSIMD_FAULT_SEED", "3") ]
    (fun () ->
      (* enough work that every victim reaches its trigger cycle *)
      let report, _ = launch (spec ~size:2048 ~teams:2 ~threads:64 0) in
      check_bool "failures reported" true (report.Device.failures <> []);
      check_bool "all of them are aborts" true
        (List.for_all
           (fun f -> f.Fault.f_kind = Fault.Block_abort)
           report.Device.failures);
      check_bool "fatal counted" true (report.Device.faults.Fault.fatal >= 1);
      let pp = pp_str report in
      check_bool "pp_report prints the fault block" true (contains pp "faults:");
      check_bool "pp_report prints each failure" true (contains pp "failure:"))

let test_flip_corrected () =
  let clean_sum =
    with_env blank_fault_env (fun () -> snd (launch (spec ~size:256 0)))
  in
  with_env [ ("OMPSIMD_FAULTS", "flip=1:0"); ("OMPSIMD_FAULT_SEED", "3") ]
    (fun () ->
      let report, sum = launch (spec ~size:256 0) in
      check_int "corrected flips never fail a block" 0
        (List.length report.Device.failures);
      check_bool "corrections counted" true
        (report.Device.faults.Fault.corrected >= 1);
      check_bool "the corrected counter reaches the device counters" true
        (Counters.get_extra report.Device.counters "fault.ecc_corrected" >= 1.0);
      Alcotest.(check int64)
        "corrected run is bit-identical to the clean one"
        (Int64.bits_of_float clean_sum) (Int64.bits_of_float sum))

let test_stall_captured () =
  with_env [ ("OMPSIMD_FAULTS", "stall=1"); ("OMPSIMD_FAULT_SEED", "3") ]
    (fun () ->
      (* must NOT raise Engine.Deadlock: capture is armed *)
      let report, _ = launch (spec ~kernel:"rowsum" ~teams:2 0) in
      check_bool "stall failures reported" true
        (List.exists
           (fun f -> f.Fault.f_kind = Fault.Barrier_stall)
           report.Device.failures);
      check_bool "stall names its barrier" true
        (List.exists
           (fun f ->
             f.Fault.f_kind = Fault.Barrier_stall && f.Fault.f_barrier <> "")
           report.Device.failures);
      check_bool "stalls counted" true (report.Device.faults.Fault.stalls >= 1))

let test_watchdog () =
  with_env [ ("OMPSIMD_WATCHDOG", "1") ] (fun () ->
      let report, _ = launch (spec 0) in
      check_bool "over-budget blocks reported" true
        (List.exists
           (fun f -> f.Fault.f_kind = Fault.Watchdog)
           report.Device.failures);
      check_bool "watchdogs counted" true
        (report.Device.faults.Fault.watchdogs >= 1));
  with_env [ ("OMPSIMD_WATCHDOG", "1e12") ] (fun () ->
      let report, _ = launch (spec 0) in
      check_int "a generous budget reports nothing" 0
        (List.length report.Device.failures))

(* Satellite: an armed plan (even all-zero rates) converts a genuine
   divergence deadlock into a structured Barrier_stall failure instead
   of raising — no sanitizer involved. *)
let divergence_clauses =
  Clause.(
    none |> num_teams 1 |> num_threads 32 |> simdlen 2
    |> parallel_mode Mode.Spmd)

let test_divergence_captured () =
  let kernel =
    Ompir.Parse.kernel_of_file (Filename.concat "conformance" "race_divergence.omp")
  in
  let space = Memory.space () in
  let bindings =
    List.map
      (fun (p : Ompir.Ir.param) ->
        let b =
          match p.Ompir.Ir.pty with
          | Ompir.Ir.P_farray -> Ompir.Eval.B_farr (Memory.falloc space 8)
          | Ompir.Ir.P_int -> Ompir.Eval.B_int 1
          | _ -> Alcotest.fail "unexpected param in race_divergence.omp"
        in
        (p.Ompir.Ir.pname, b))
      kernel.Ompir.Ir.params
  in
  let compiled =
    match Offload.compile ~guardize:false ~racecheck:true kernel with
    | Ok c -> c
    | Error _ -> Alcotest.fail "race_divergence.omp failed to compile"
  in
  with_env [ ("OMPSIMD_FAULTS", "abort=0") ] (fun () ->
      let report = Offload.run ~cfg ~clauses:divergence_clauses ~bindings compiled in
      check_bool "the hung block surfaces as a stall failure" true
        (List.exists
           (fun f -> f.Fault.f_kind = Fault.Barrier_stall)
           report.Device.failures);
      check_bool "the failure names the stuck rendezvous" true
        (List.exists
           (fun f -> contains f.Fault.f_barrier "(")
           report.Device.failures);
      check_bool "stall counted" true (report.Device.faults.Fault.stalls >= 1))

(* ------------------------------------------------------------------ *)
(* Sharing-space exhaustion and the genuine global fallback            *)
(* ------------------------------------------------------------------ *)

(* A generic-mode region with a 12-pointer payload whose SIMD body
   writes through global memory: results must not depend on where the
   payload copies live (variable-sharing slice vs global fallback). *)
let sharing_run ?(sharing_bytes = 4096) () =
  Fault.refresh_from_env ();
  let space = Memory.space () in
  let data = Memory.falloc space 64 in
  let payload =
    Payload.of_list (List.init 12 (fun _ -> Payload.Farr data))
  in
  let params =
    { Team.num_teams = 2; num_threads = 64; teams_mode = Mode.Spmd; sharing_bytes }
  in
  let report =
    Target.launch ~cfg ~params ~dispatch_table_size:2 (fun ctx ->
        Parallel.parallel ctx ~mode:Mode.Generic ~simd_len:8 ~payload ~fn_id:0
          (fun ctx _ ->
            Workshare.distribute_parallel_for ctx ~trip:64 (fun i ->
                Simd.simd ctx ~payload ~fn_id:1 ~trip:8 (fun ctx j _ ->
                    let th = ctx.Team.th in
                    (* overlapping writers store the same value per slot,
                       so the result is placement-independent *)
                    let slot = ((i * 8) + j) mod 64 in
                    Memory.fset data th slot (float_of_int slot +. 1.0)))))
  in
  let sum = ref 0.0 in
  for i = 0 to 63 do
    sum := !sum +. Memory.host_get data i
  done;
  (report, !sum)

let fallbacks (r : Device.report) =
  Counters.get_extra r.Device.counters "sharing.global_fallbacks"

let test_exhaust_forces_fallback () =
  let clean_report, clean_sum =
    with_env blank_fault_env (fun () -> sharing_run ())
  in
  Alcotest.(check (float 0.0))
    "roomy slices never fall back" 0.0 (fallbacks clean_report);
  with_env [ ("OMPSIMD_FAULTS", "exhaust=1"); ("OMPSIMD_FAULT_SEED", "3") ]
    (fun () ->
      let report, sum = sharing_run () in
      check_bool "exhaustion counted" true
        (report.Device.faults.Fault.exhausts >= 1);
      check_bool "acquires forced onto the global fallback" true
        (fallbacks report >= 1.0);
      check_int "no failures: exhaustion degrades, it does not kill" 0
        (List.length report.Device.failures);
      Alcotest.(check int64)
        "fallback placement is bit-identical"
        (Int64.bits_of_float clean_sum) (Int64.bits_of_float sum))

(* Satellite: the same fallback, exercised for real — a payload larger
   than the per-group slice, no fault plan involved. *)
let test_genuine_fallback_bit_identical () =
  with_env blank_fault_env (fun () ->
      let roomy_report, roomy_sum = sharing_run ~sharing_bytes:4096 () in
      let tight_report, tight_sum = sharing_run ~sharing_bytes:128 () in
      Alcotest.(check (float 0.0))
        "roomy config stays in the shared slice" 0.0 (fallbacks roomy_report);
      check_bool "tight config falls back to global memory" true
        (fallbacks tight_report >= 1.0);
      Alcotest.(check int64)
        "both placements compute identical results"
        (Int64.bits_of_float roomy_sum) (Int64.bits_of_float tight_sum))

(* ------------------------------------------------------------------ *)
(* Serve-layer recovery                                                *)
(* ------------------------------------------------------------------ *)

let conf ?(queue_bound = 16) ?(servers = 2) ?(cache = 8) ?(retries = 2)
    ?(backoff = 200.0) ?(breaker = 0) () =
  {
    Scheduler.cfg;
    queue_bound;
    servers;
    cache_capacity = cache;
    max_retries = retries;
    backoff;
    breaker;
    slo = None;
    window = 20_000.0;
    knobs = Offload.default_knobs;
  }

let outcome =
  Alcotest.testable (Fmt.of_to_string Scheduler.outcome_to_string) ( = )

let test_serve_degraded_after_retries () =
  with_env [ ("OMPSIMD_FAULTS", "abort=1"); ("OMPSIMD_FAULT_SEED", "7") ]
    (fun () ->
      let reports, m = Scheduler.run (conf ~retries:2 ()) [ spec 0 ] in
      let r = List.nth reports 0 in
      Alcotest.check outcome "retries exhausted: degraded" Scheduler.Degraded
        r.Scheduler.outcome;
      check_int "original launch + two relaunches" 3 r.Scheduler.launches;
      check_int "every launch failed" 3 m.Metrics.device_failures;
      check_int "two relaunches scheduled" 2 m.Metrics.relaunches;
      check_int "degraded counted" 1 m.Metrics.degraded;
      check_int "nothing recovered" 0 m.Metrics.recovered;
      check_bool "fatal faults folded into metrics" true
        (m.Metrics.faults_fatal >= 3))

let test_serve_recovery () =
  (* a 50% per-block abort rate on single-block kernels: each relaunch
     draws fresh faults (the launch nonce), so with a relaunch budget
     most requests complete and — with this seed — at least one does so
     on a second or later launch *)
  with_env [ ("OMPSIMD_FAULTS", "abort=0.5"); ("OMPSIMD_FAULT_SEED", "11") ]
    (fun () ->
      let specs =
        List.init 6 (fun i ->
            spec ~at:(float_of_int i *. 40000.0) ~teams:1 ~seed:(i + 1) i)
      in
      let reports, m = Scheduler.run (conf ~retries:3 ()) specs in
      check_bool "every outcome is Completed or Degraded" true
        (List.for_all
           (fun r ->
             r.Scheduler.outcome = Scheduler.Completed
             || r.Scheduler.outcome = Scheduler.Degraded)
           reports);
      check_bool "at least one request recovered" true (m.Metrics.recovered >= 1);
      check_int "recovered = completions that needed > 1 launch"
        (List.length
           (List.filter
              (fun r ->
                r.Scheduler.outcome = Scheduler.Completed
                && r.Scheduler.launches > 1)
              reports))
        m.Metrics.recovered;
      check_int "every failure was relaunched or ended Degraded"
        (m.Metrics.relaunches
        + List.length
            (List.filter
               (fun r ->
                 r.Scheduler.outcome = Scheduler.Degraded
                 && r.Scheduler.launches > 0)
               reports))
        m.Metrics.device_failures)

let test_serve_breaker () =
  (* always-fatal plan, breaker threshold 2, no relaunch budget: the
     first two requests fail and open the kernel's breaker, the third
     (arriving well inside the cooldown) is shed without launching *)
  with_env [ ("OMPSIMD_FAULTS", "abort=1"); ("OMPSIMD_FAULT_SEED", "7") ]
    (fun () ->
      let reports, m =
        Scheduler.run
          (conf ~servers:1 ~retries:0 ~breaker:2 ~backoff:1_000_000.0 ())
          [ spec ~at:0.0 0; spec ~at:200_000.0 1; spec ~at:400_000.0 2 ]
      in
      Alcotest.check outcome "first degraded" Scheduler.Degraded
        (List.nth reports 0).Scheduler.outcome;
      Alcotest.check outcome "second degraded" Scheduler.Degraded
        (List.nth reports 1).Scheduler.outcome;
      let r2 = List.nth reports 2 in
      Alcotest.check outcome "third shed by the open breaker"
        Scheduler.Degraded r2.Scheduler.outcome;
      check_int "the shed request never launched" 0 r2.Scheduler.launches;
      check_int "breaker opened once" 1 m.Metrics.breaker_opens;
      check_int "only the first two launched" 2 m.Metrics.launches)

let test_serve_chaos_replay () =
  (* the determinism contract under fire: one trace, an armed chaos
     plan, four engine x pool combinations — byte-identical snapshots *)
  let specs = Request.synthetic ~n:12 ~seed:3 () in
  let c = conf ~retries:2 ~breaker:3 ~backoff:800.0 () in
  let snap ?pool engine =
    with_env (("OMPSIMD_EVAL", engine) :: chaos_env) (fun () ->
        let reports, m = Scheduler.run c ?pool specs in
        Scheduler.snapshot_json c reports m)
  in
  let pool = Gpusim.Pool.create ~domains:3 () in
  let staged_seq = snap "compile" in
  let staged_pool = snap ~pool "compile" in
  let walk_seq = snap "walk" in
  let walk_pool = snap ~pool "walk" in
  check_bool "the chaos plan actually fired" true
    (contains staged_seq "\"degraded\"" || contains staged_seq "launches\": 2"
   || contains staged_seq "launches\": 3");
  Alcotest.(check string) "pool matches sequential" staged_seq staged_pool;
  Alcotest.(check string) "walk engine matches staged" staged_seq walk_seq;
  Alcotest.(check string) "walk + pool matches too" staged_seq walk_pool

(* qcheck: under any plan and seed, no deadline and a roomy queue, the
   service loses nothing — every request ends Completed or Degraded,
   every device failure is accounted for (it either scheduled a
   relaunch or ended in a budget-exhausted Degraded report; a Degraded
   report with fewer launches is a breaker shed, possible only after
   the breaker opened), and the recovered counter is exactly the
   completions that needed more than one launch. *)
let recovery_invariant =
  QCheck.Test.make ~count:12 ~name:"serve recovery invariant"
    QCheck.(
      triple (oneofl [ 0.0; 0.3; 0.7; 1.0 ]) (oneofl [ 0.0; 0.4 ])
        small_nat)
    (fun (abort, stall, seed) ->
      let plan = Printf.sprintf "abort=%g,flip=0.3:0.5,stall=%g" abort stall in
      with_env
        [
          ("OMPSIMD_FAULTS", plan);
          ("OMPSIMD_FAULT_SEED", string_of_int seed);
        ]
        (fun () ->
          let specs =
            List.init 6 (fun i ->
                spec
                  ~at:(float_of_int i *. 30000.0)
                  ~kernel:(if i mod 2 = 0 then "saxpy" else "rowsum")
                  ~teams:2 ~seed:(i + 1) i)
          in
          let reports, m =
            Scheduler.run (conf ~retries:2 ~breaker:3 ()) specs
          in
          List.length reports = 6
          && List.for_all
               (fun r ->
                 (r.Scheduler.outcome = Scheduler.Completed
                 || r.Scheduler.outcome = Scheduler.Degraded)
                 && r.Scheduler.launches <= 3)
               reports
          && m.Metrics.device_failures
             = m.Metrics.relaunches
               + List.length
                   (List.filter
                      (fun r ->
                        r.Scheduler.outcome = Scheduler.Degraded
                        && r.Scheduler.launches = 3)
                      reports)
          && List.for_all
               (fun r ->
                 r.Scheduler.outcome <> Scheduler.Degraded
                 || r.Scheduler.launches = 3
                 || m.Metrics.breaker_opens >= 1)
               reports
          && m.Metrics.recovered
             = List.length
                 (List.filter
                    (fun r ->
                      r.Scheduler.outcome = Scheduler.Completed
                      && r.Scheduler.launches > 1)
                    reports)))

let suite =
  [
    ( "fault",
      [
        Alcotest.test_case "disarmed: bit-identical reports" `Quick
          test_disarmed_identity;
        Alcotest.test_case "fixed seed: engine- and pool-invariant" `Quick
          test_fixed_seed_invariance;
        Alcotest.test_case "abort: failed blocks reported" `Quick test_abort;
        Alcotest.test_case "flip: corrected, counted, bit-identical" `Quick
          test_flip_corrected;
        Alcotest.test_case "stall: captured, not raised" `Quick
          test_stall_captured;
        Alcotest.test_case "watchdog: cycle budget enforced" `Quick
          test_watchdog;
        Alcotest.test_case "divergence: captured under an armed plan" `Quick
          test_divergence_captured;
        Alcotest.test_case "exhaust: forced global fallback" `Quick
          test_exhaust_forces_fallback;
        Alcotest.test_case "sharing: genuine fallback is bit-identical" `Quick
          test_genuine_fallback_bit_identical;
      ] );
    ( "fault-serve",
      [
        Alcotest.test_case "degraded after the relaunch budget" `Quick
          test_serve_degraded_after_retries;
        Alcotest.test_case "relaunch recovers transient failures" `Quick
          test_serve_recovery;
        Alcotest.test_case "circuit breaker sheds a failing kernel" `Quick
          test_serve_breaker;
        Alcotest.test_case "chaos replay is engine- and pool-invariant" `Quick
          test_serve_chaos_replay;
        QCheck_alcotest.to_alcotest recovery_invariant;
      ] );
  ]
