(* Runtest tier for the OMPSIMD_EVAL switch: drive one small kernel
   end-to-end through the compile-and-offload pipeline under both
   evaluator engines — the reference tree walker and the staged
   compiler — selected exactly the way a user selects them (the
   environment variable, read at launch time), and require bit-identical
   results.  This covers the offload.ml dispatch itself, which the
   in-process differential tests bypass by calling the engines
   directly. *)

module Ir = Ompir.Ir
module Eval = Ompir.Eval
module Memory = Gpusim.Memory
module Offload = Openmp.Offload
module Clause = Openmp.Clause

(* out[r] = sum_j src[r*len + j] *)
let kernel =
  Ir.kernel ~name:"rowsum"
    ~params:
      [
        { Ir.pname = "src"; pty = Ir.P_farray };
        { Ir.pname = "out"; pty = Ir.P_farray };
        { Ir.pname = "rows"; pty = Ir.P_int };
        { Ir.pname = "len"; pty = Ir.P_int };
      ]
    [
      Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "rows")
        [
          Ir.Decl { name = "acc"; ty = Ir.Tfloat; init = Ir.f 0.0 };
          Ir.simd_sum ~acc:"acc" ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.v "len")
            ~value:
              Ir.(Load ("src", Binop (Add, Binop (Mul, v "r", v "len"), v "j")))
            [];
          Ir.Store ("out", Ir.v "r", Ir.v "acc");
        ];
    ]

let rows = 96
let len = 20
let src_val i = float_of_int (i mod 11) *. 0.25

let run_with_engine engine =
  Unix.putenv "OMPSIMD_EVAL" engine;
  let cfg = Gpusim.Config.small in
  let space = Memory.space () in
  let src =
    Memory.of_float_array space (Array.init (rows * len) src_val)
  in
  let out = Memory.falloc space rows in
  let bindings =
    [
      ("src", Eval.B_farr src);
      ("out", Eval.B_farr out);
      ("rows", Eval.B_int rows);
      ("len", Eval.B_int len);
    ]
  in
  match Offload.compile kernel with
  | Error _ -> failwith "dual_engine: kernel failed to compile"
  | Ok compiled ->
      let report =
        Offload.run ~cfg
          ~clauses:Clause.(none |> num_threads 64 |> simdlen 4)
          ~bindings compiled
      in
      let result = Array.init rows (fun r -> Memory.host_get out r) in
      (report, result)

let () =
  let walk_report, walk_out = run_with_engine "walk" in
  let staged_report, staged_out = run_with_engine "compile" in
  if walk_out <> staged_out then
    failwith "dual_engine: output arrays differ between engines";
  if
    walk_report.Gpusim.Device.time_cycles
    <> staged_report.Gpusim.Device.time_cycles
  then failwith "dual_engine: time_cycles differ between engines";
  if
    not
      (Gpusim.Counters.equal walk_report.Gpusim.Device.counters
         staged_report.Gpusim.Device.counters)
  then failwith "dual_engine: counters differ between engines";
  (* sanity: the kernel actually computed row sums *)
  Array.iteri
    (fun r got ->
      let expected = ref 0.0 in
      for j = 0 to len - 1 do
        expected := !expected +. src_val ((r * len) + j)
      done;
      if Float.abs (got -. !expected) > 1e-9 then
        failwith "dual_engine: wrong row sum")
    walk_out;
  print_endline
    "dual-engine OK: walk and compile engines bit-identical end-to-end"
