(* Unit and property tests for the GPU simulator substrate. *)

module Config = Gpusim.Config
module Counters = Gpusim.Counters
module Linebuf = Gpusim.Linebuf
module Thread = Gpusim.Thread
module Barrier = Gpusim.Barrier
module Engine = Gpusim.Engine
module Memory = Gpusim.Memory
module Shared = Gpusim.Shared
module Occupancy = Gpusim.Occupancy
module Device = Gpusim.Device
module Trace = Gpusim.Trace
module Pool = Gpusim.Pool

let cfg = Config.small
let checkf = Alcotest.check (Alcotest.float 1e-6)
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

(* --- Config ----------------------------------------------------------- *)

let test_config_presets_valid () =
  List.iter
    (fun c ->
      match Config.validate c with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s invalid: %s" c.Config.name msg)
    [ Config.a100; Config.amd_like; Config.small ]

let test_config_validation_catches () =
  let bad = { Config.a100 with Config.num_sms = 0 } in
  check_bool "invalid" true (Result.is_error (Config.validate bad));
  let bad2 = { Config.a100 with Config.max_threads_per_block = 100 } in
  check_bool "non-warp-multiple" true (Result.is_error (Config.validate bad2))

let test_config_amd_flag () =
  check_bool "a100 has warp barrier" true
    (Config.a100.Config.barrier_impl = Config.Hw_barrier);
  check_bool "amd lacks warp barrier" true
    (Config.amd_like.Config.barrier_impl = Config.No_barrier)

(* --- Zoo -------------------------------------------------------------- *)

let zoo_cfg name =
  match Gpusim.Zoo.find name with
  | Some e -> e.Gpusim.Zoo.config
  | None -> Alcotest.failf "zoo entry %s missing" name

let test_zoo_registry () =
  List.iter
    (fun (e : Gpusim.Zoo.entry) ->
      (match Config.validate e.Gpusim.Zoo.config with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "zoo %s invalid: %s" e.Gpusim.Zoo.name msg);
      check_bool
        (e.Gpusim.Zoo.name ^ " findable")
        true
        (Gpusim.Zoo.find e.Gpusim.Zoo.name <> None))
    Gpusim.Zoo.all;
  check_int "names distinct"
    (List.length Gpusim.Zoo.names)
    (List.length (List.sort_uniq compare Gpusim.Zoo.names));
  (* the swept axes are all represented *)
  let sweep_cfgs =
    List.map (fun e -> e.Gpusim.Zoo.config) Gpusim.Zoo.sweep
  in
  List.iter
    (fun w ->
      check_bool
        (Printf.sprintf "warp %d swept" w)
        true
        (List.exists (fun c -> c.Config.warp_size = w) sweep_cfgs))
    [ 8; 16; 32; 64 ];
  List.iter
    (fun (label, impl) ->
      check_bool (label ^ " swept") true
        (List.exists (fun c -> c.Config.barrier_impl = impl) sweep_cfgs))
    [
      ("hw", Config.Hw_barrier);
      ("sw", Config.Sw_barrier);
      ("none", Config.No_barrier);
    ]

let test_zoo_resolve () =
  (match Gpusim.Zoo.resolve "w64-sw" with
  | Ok c ->
      check_int "warp width" 64 c.Config.warp_size;
      check_bool "sw barrier" true (c.Config.barrier_impl = Config.Sw_barrier)
  | Error e -> Alcotest.failf "w64-sw: %s" e);
  (match Gpusim.Zoo.resolve "w64-sw,num_sms=4" with
  | Ok c ->
      check_int "override applied" 4 c.Config.num_sms;
      check_int "name keeps warp" 64 c.Config.warp_size
  | Error e -> Alcotest.failf "w64-sw,num_sms=4: %s" e);
  (match Gpusim.Zoo.resolve "no-such-device" with
  | Ok _ -> Alcotest.fail "unknown device resolved"
  | Error e ->
      check_bool "error names the device" true
        (Astring_like.contains e "no-such-device"))

let test_config_spec_roundtrip () =
  List.iter
    (fun (e : Gpusim.Zoo.entry) ->
      let c = e.Gpusim.Zoo.config in
      match Config.of_spec ~base:c (Config.to_spec c) with
      | Ok c' -> check_bool (e.Gpusim.Zoo.name ^ " roundtrip") true (c' = c)
      | Error msg -> Alcotest.failf "%s roundtrip: %s" e.Gpusim.Zoo.name msg)
    Gpusim.Zoo.all

let test_config_of_spec_errors () =
  let bad spec needle =
    match Config.of_spec ~base:Config.small spec with
    | Ok _ -> Alcotest.failf "accepted %S" spec
    | Error msg ->
        check_bool
          (Printf.sprintf "%S error mentions %S" spec needle)
          true
          (Astring_like.contains msg needle)
  in
  bad "warp_sz=16" "warp_sz";
  bad "warp_size=banana" "warp_size";
  bad "warp_size=0" "warp";
  bad "barrier=quantum" "barrier"

(* Same kernel, same data, different warp widths and barrier
   implementations: the device-memory results must be bit-identical.
   Warp width moves cycle counts, never values — and that has to hold
   under both evaluation engines and a pooled run, or a heterogeneous
   fleet could not batch/steal across devices safely. *)
let zoo_width_differential =
  QCheck.Test.make ~count:4 ~name:"zoo width differential"
    QCheck.(
      triple
        (oneofl Serve.Request.catalog_names)
        (int_range 16 48) (int_range 1 1000))
    (fun (kernel, size, seed) ->
      let spec =
        {
          Serve.Request.default_spec with
          Serve.Request.kernel;
          size;
          seed;
          teams = 2;
          threads = 64;
          (* a multiple of every swept warp width *)
          simdlen = 8;
        }
      in
      let knobs = Openmp.Offload.default_knobs in
      let run_on ?pool cfg =
        let k, bindings, out = Serve.Request.instantiate spec in
        match Openmp.Offload.compile_with ~knobs k with
        | Error _ -> Alcotest.failf "%s does not compile" kernel
        | Ok compiled ->
            let clauses =
              Openmp.Clause.(
                none
                |> num_teams spec.Serve.Request.teams
                |> num_threads spec.Serve.Request.threads
                |> simdlen spec.Serve.Request.simdlen)
            in
            ignore
              (Openmp.Offload.run ~cfg ?pool ~clauses ~bindings compiled
                : Device.report);
            Array.init (Memory.flength out) (Memory.host_get out)
      in
      let with_env pairs f =
        List.iter (fun (k, v) -> Unix.putenv k v) pairs;
        Fun.protect f ~finally:(fun () ->
            List.iter (fun (k, _) -> Unix.putenv k "") pairs)
      in
      let reference =
        with_env [ ("OMPSIMD_EVAL", "") ] (fun () -> run_on (zoo_cfg "w32-hw"))
      in
      let pool = Pool.create ~domains:2 () in
      let ok =
        List.for_all
          (fun name ->
            let cfg = zoo_cfg name in
            let seq =
              with_env [ ("OMPSIMD_EVAL", "") ] (fun () -> run_on cfg)
            in
            let pooled =
              with_env
                [ ("OMPSIMD_EVAL", "walk") ]
                (fun () -> run_on ~pool cfg)
            in
            seq = reference && pooled = reference)
          [ "w8-hw"; "w16-hw"; "w64-hw"; "w16-sw"; "w64-sw"; "w32-none" ]
      in
      Pool.shutdown pool;
      ok)

(* --- Linebuf ---------------------------------------------------------- *)

let test_linebuf_hit_miss () =
  let lb = Linebuf.create ~capacity:8 ~coalesce_window:0.0 in
  check_bool "first is miss" false (Linebuf.is_resident (fst (Linebuf.touch lb ~vtime:0.0 ~lane:0 1)));
  check_bool "repeat is hit" true (Linebuf.is_resident (fst (Linebuf.touch lb ~vtime:1.0 ~lane:0 1)));
  check_bool "second line miss" false (Linebuf.is_resident (fst (Linebuf.touch lb ~vtime:2.0 ~lane:0 2)));
  check_bool "both resident" true (Linebuf.is_resident (fst (Linebuf.touch lb ~vtime:3.0 ~lane:0 2)))

let test_linebuf_window_infinite_below_capacity () =
  (* A small working set never thrashes: re-touches hit at any distance. *)
  let lb = Linebuf.create ~capacity:8 ~coalesce_window:0.0 in
  for l = 0 to 5 do
    ignore (Linebuf.touch lb ~vtime:(float_of_int l) ~lane:0 l)
  done;
  check_bool "infinite window" true (Linebuf.window lb = Float.infinity);
  check_bool "old line still hits" true (Linebuf.is_resident (fst (Linebuf.touch lb ~vtime:1.0e6 ~lane:0 0)))

let test_linebuf_residency_window () =
  (* Stream far more distinct lines than capacity: the window becomes
     finite and stale re-touches miss while fresh ones hit. *)
  let lb = Linebuf.create ~capacity:4 ~coalesce_window:0.0 in
  for l = 0 to 99 do
    ignore (Linebuf.touch lb ~vtime:(float_of_int l) ~lane:0 l)
  done;
  (* rate = 1 line/cycle, so lines stay resident ~capacity cycles *)
  let w = Linebuf.window lb in
  check_bool "finite window" true (w < 10.0);
  check_bool "stale line misses" false (Linebuf.is_resident (fst (Linebuf.touch lb ~vtime:100.0 ~lane:0 3)));
  check_bool "recent line hits" true (Linebuf.is_resident (fst (Linebuf.touch lb ~vtime:100.0 ~lane:0 99)))

let test_linebuf_concurrent_vtimes_overlap () =
  (* Lanes run serially in host order but overlap in virtual time: a
     touch with an *earlier* vtime than the stamp is still a hit. *)
  let lb = Linebuf.create ~capacity:2 ~coalesce_window:0.0 in
  for l = 0 to 49 do
    ignore (Linebuf.touch lb ~vtime:(float_of_int (l * 10)) ~lane:0 l)
  done;
  (* stamp of line 49 is 490; another lane at vtime 100 touching it is
     concurrent, not stale *)
  check_bool "concurrent touch hits" true (Linebuf.is_resident (fst (Linebuf.touch lb ~vtime:100.0 ~lane:0 49)))

let test_linebuf_clear () =
  let lb = Linebuf.create ~capacity:4 ~coalesce_window:0.0 in
  ignore (Linebuf.touch lb ~vtime:0.0 ~lane:0 9);
  Linebuf.clear lb;
  check_int "empty" 0 (Linebuf.size lb);
  check_int "misses reset" 0 (Linebuf.misses lb);
  check_bool "miss after clear" false (Linebuf.is_resident (fst (Linebuf.touch lb ~vtime:0.0 ~lane:0 9)))

(* --- Counters --------------------------------------------------------- *)

let test_counters_merge () =
  let a = Counters.create () and b = Counters.create () in
  a.Counters.global_loads <- 3;
  b.Counters.global_loads <- 4;
  Counters.bump a "x" 1.5;
  Counters.bump b "x" 2.5;
  Counters.merge_into ~dst:a b;
  check_int "loads" 7 a.Counters.global_loads;
  checkf "extras" 4.0 (Counters.get_extra a "x")

let test_counters_coalescing_ratio () =
  let c = Counters.create () in
  checkf "no accesses" 1.0 (Counters.coalescing_ratio c);
  c.Counters.line_hits <- 3;
  c.Counters.line_misses <- 1;
  checkf "3/4" 0.75 (Counters.coalescing_ratio c)

let test_counters_equal () =
  let a = Counters.create () and b = Counters.create () in
  check_bool "fresh equal" true (Counters.equal a b);
  a.Counters.global_loads <- 2;
  check_bool "fixed field differs" false (Counters.equal a b);
  b.Counters.global_loads <- 2;
  check_bool "fixed field matches" true (Counters.equal a b);
  Counters.bump a "x" 1.5;
  check_bool "extra differs" false (Counters.equal a b);
  check_bool "extra differs (sym)" false (Counters.equal b a);
  Counters.bump b "x" 1.5;
  check_bool "extras match" true (Counters.equal a b);
  (* an explicit zero entry is the same as no entry *)
  Counters.bump a "zero" 0.0;
  check_bool "absent extra reads as 0" true (Counters.equal a b);
  check_bool "absent extra reads as 0 (sym)" true (Counters.equal b a)

(* --- Engine / Barrier ------------------------------------------------- *)

let run_block ?(threads = 8) body =
  Engine.run_block ~cfg ~block_id:0 ~num_threads:threads body

let test_engine_runs_all_threads () =
  let seen = Array.make 8 false in
  let r = run_block (fun th -> seen.(th.Thread.tid) <- true) in
  Array.iteri (fun i s -> check_bool (Printf.sprintf "thread %d ran" i) true s) seen;
  check_int "threads" 8 r.Engine.num_threads

let test_engine_barrier_aligns_clocks () =
  (* Threads tick different amounts, then all meet a barrier: every clock
     must come out as max(arrivals) + barrier cost. *)
  let bar = Barrier.create ~expected:4 ~cost:10.0 () in
  let finals = Array.make 4 0.0 in
  ignore
    (run_block ~threads:4 (fun th ->
         Thread.tick th (float_of_int (th.Thread.tid * 100));
         Engine.barrier_wait bar th;
         finals.(th.Thread.tid) <- Thread.clock th));
  Array.iter (fun c -> checkf "aligned" 310.0 c) finals

let test_engine_barrier_reusable () =
  let bar = Barrier.create ~expected:4 ~cost:0.0 () in
  let counter = ref 0 in
  ignore
    (run_block ~threads:4 (fun th ->
         Engine.barrier_wait bar th;
         if th.Thread.tid = 0 then incr counter;
         Engine.barrier_wait bar th;
         if th.Thread.tid = 0 then incr counter));
  check_int "two rounds" 2 !counter

let test_engine_barrier_orders_writes () =
  (* Signal pattern used by the runtime: t0 writes, everyone syncs, all
     read.  The barrier must make the write visible in simulated order. *)
  let bar = Barrier.create ~expected:4 ~cost:1.0 () in
  let cell = ref 0 in
  let seen = Array.make 4 0 in
  ignore
    (run_block ~threads:4 (fun th ->
         if th.Thread.tid = 0 then cell := 99;
         Engine.barrier_wait bar th;
         seen.(th.Thread.tid) <- !cell));
  Array.iter (fun v -> check_int "saw write" 99 v) seen

let test_engine_deadlock_detection () =
  let bar = Barrier.create ~expected:5 ~cost:0.0 () in
  (* only 4 threads arrive at a 5-expected barrier *)
  check_bool "deadlock raised" true
    (try
       ignore (run_block ~threads:4 (fun th -> Engine.barrier_wait bar th));
       false
     with Engine.Deadlock _ -> true)

let test_engine_rejects_bad_sizes () =
  Alcotest.check_raises "zero threads"
    (Invalid_argument "Engine.run_block: num_threads must be positive")
    (fun () -> ignore (run_block ~threads:0 (fun _ -> ())));
  check_bool "too large" true
    (try
       ignore (run_block ~threads:(cfg.Config.max_threads_per_block + 1) (fun _ -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_busy_excludes_wait () =
  (* A thread that waits at a barrier for a slow peer gains clock but not
     busy time. *)
  let bar = Barrier.create ~expected:2 ~cost:0.0 () in
  let busy = Array.make 2 0.0 in
  ignore
    (run_block ~threads:2 (fun th ->
         if th.Thread.tid = 1 then Thread.tick th 1000.0;
         Engine.barrier_wait bar th;
         busy.(th.Thread.tid) <- Thread.busy th));
  check_bool "fast thread not busy while waiting" true (busy.(0) < 10.0);
  check_bool "slow thread busy" true (busy.(1) >= 1000.0)

(* --- Memory ----------------------------------------------------------- *)

let with_thread f =
  ignore
    (run_block ~threads:1 (fun th -> f th))

let test_memory_roundtrip () =
  let sp = Memory.space () in
  let a = Memory.falloc sp 16 in
  with_thread (fun th ->
      Memory.fset a th 3 2.5;
      checkf "read back" 2.5 (Memory.fget a th 3));
  checkf "host view" 2.5 (Memory.host_get a 3)

let test_memory_int_roundtrip () =
  let sp = Memory.space () in
  let a = Memory.ialloc sp 8 in
  with_thread (fun th ->
      Memory.iset a th 0 42;
      check_int "read back" 42 (Memory.iget a th 0))

let test_memory_bounds () =
  let sp = Memory.space () in
  let a = Memory.falloc sp 4 in
  with_thread (fun th ->
      check_bool "oob raises" true
        (try
           ignore (Memory.fget a th 4);
           false
         with Invalid_argument _ -> true))

let test_memory_coalescing_consecutive () =
  (* 16 consecutive doubles span four 32-byte sectors: one DRAM fetch per
     sector, the other accesses are resident. *)
  let sp = Memory.space () in
  let a = Memory.falloc sp 16 in
  let r =
    run_block ~threads:1 (fun th ->
        for i = 0 to 15 do
          ignore (Memory.fget a th i)
        done)
  in
  check_int "four sector misses" 4 r.Engine.counters.Counters.line_misses;
  check_int "rest resident" 12 r.Engine.counters.Counters.line_hits

let test_memory_strided_access_uncoalesced () =
  (* Stride 16 (one line each) touches a new line per access. *)
  let sp = Memory.space () in
  let a = Memory.falloc sp (16 * 16) in
  let r =
    run_block ~threads:1 (fun th ->
        for i = 0 to 15 do
          ignore (Memory.fget a th (i * 16))
        done)
  in
  check_int "all misses" 16 r.Engine.counters.Counters.line_misses

let test_memory_warp_lanes_share_lines () =
  (* Lanes of one warp reading consecutive elements coalesce: 32 doubles
     = 8 sectors, one transaction each; the other 24 accesses ride along. *)
  let sp = Memory.space () in
  let a = Memory.falloc sp 32 in
  let r =
    run_block ~threads:32 (fun th ->
        ignore (Memory.fget a th th.Thread.tid))
  in
  check_int "eight sectors" 8 r.Engine.counters.Counters.line_misses;
  check_int "rest coalesced" 24 r.Engine.counters.Counters.line_hits;
  checkf "transactions = misses" 8.0 (Counters.lsu_transactions r.Engine.counters)

let test_memory_dram_bytes_accounting () =
  let sp = Memory.space () in
  let a = Memory.falloc sp 16 in
  let r =
    run_block ~threads:1 (fun th -> ignore (Memory.fget a th 0))
  in
  checkf "one line of traffic"
    (float_of_int cfg.Config.line_bytes)
    (Counters.dram_bytes r.Engine.counters)

let test_memory_atomic_add () =
  let sp = Memory.space () in
  let a = Memory.falloc sp 1 in
  ignore
    (run_block ~threads:8 (fun th ->
         ignore (Memory.atomic_fadd a th 0 1.0)));
  checkf "all adds landed" 8.0 (Memory.host_get a 0)

let test_memory_atomic_contention_cost () =
  (* Same-line atomics in one epoch cost more than spread-out atomics. *)
  let sp = Memory.space () in
  let hot = Memory.falloc sp 1 in
  let cold = Memory.falloc sp (16 * 8) in
  let time_of target idx_of =
    let r =
      run_block ~threads:8 (fun th ->
          ignore (Memory.atomic_fadd target th (idx_of th.Thread.tid) 1.0))
    in
    r.Engine.critical_cycles
  in
  let hot_t = time_of hot (fun _ -> 0) in
  let cold_t = time_of cold (fun tid -> tid * 16) in
  check_bool "contention costs" true (hot_t > cold_t)

let test_memory_of_arrays () =
  let sp = Memory.space () in
  let f = Memory.of_float_array sp [| 1.0; 2.0 |] in
  let i = Memory.of_int_array sp [| 7; 8; 9 |] in
  check_int "flength" 2 (Memory.flength f);
  check_int "ilength" 3 (Memory.ilength i);
  checkf "content" 2.0 (Memory.host_get f 1);
  check_int "icontent" 9 (Memory.host_geti i 2);
  Memory.fill f 5.0;
  checkf "fill" 5.0 (Memory.host_get f 0)

(* --- Shared ----------------------------------------------------------- *)

let test_shared_alloc_and_overflow () =
  let a = Shared.arena_of_capacity 100 in
  (match Shared.alloc a ~bytes:60 with
  | Some off -> check_int "first at 0" 0 off
  | None -> Alcotest.fail "alloc failed");
  check_bool "overflow" true (Shared.alloc a ~bytes:60 = None);
  check_int "used" 60 (Shared.used a)

let test_shared_stack_discipline () =
  let a = Shared.arena_of_capacity 100 in
  let m = Shared.mark a in
  ignore (Shared.alloc a ~bytes:40);
  Shared.release a m;
  check_int "released" 0 (Shared.used a);
  check_int "high water kept" 40 (Shared.high_water a)

let test_shared_release_validation () =
  let a = Shared.arena_of_capacity 10 in
  Alcotest.check_raises "bad mark"
    (Invalid_argument "Shared.release: invalid mark") (fun () ->
      Shared.release a 5)

(* --- Occupancy -------------------------------------------------------- *)

let test_occupancy_thread_limit () =
  check_int "by threads" 4
    (Occupancy.blocks_per_sm cfg ~threads_per_block:128 ~smem_per_block:0)

let test_occupancy_smem_limit () =
  let smem = cfg.Config.shared_mem_per_sm / 2 in
  check_int "by smem" 2
    (Occupancy.blocks_per_sm cfg ~threads_per_block:32 ~smem_per_block:smem)

let test_occupancy_unlaunchable () =
  check_int "too big" 0
    (Occupancy.blocks_per_sm cfg
       ~threads_per_block:(cfg.Config.max_threads_per_block + 32)
       ~smem_per_block:0)

let block_cost ?(critical = 100.0) ?(busy = 1000.0) ?(dram = 0.0)
    ?(lsu = 0.0) ?(active = 32) ?(threads = 32) ?(smem = 0) () =
  {
    Occupancy.critical;
    busy;
    dram_bytes = dram;
    lsu_transactions = lsu;
    active_lanes = active;
    threads;
    smem_bytes = smem;
  }

let test_occupancy_latency_hiding () =
  (* With many resident blocks, total time approaches max(critical), not
     sum(critical). *)
  let small_blocks = Array.init 8 (fun _ -> block_cost ~busy:0.0 ()) in
  let bd = Occupancy.kernel_time cfg small_blocks in
  let launch = cfg.Config.cost.Config.launch_overhead in
  check_bool "latency hidden" true (bd.Occupancy.time -. launch < 250.0)

let test_occupancy_throughput_bound () =
  (* Huge busy time must dominate; a single block whose average issuing
     parallelism (busy/critical) is 32 lanes retires 32/dep_stall
     lane-ops per cycle, not full width. *)
  let blocks = [| block_cost ~busy:1.0e6 ~critical:(1.0e6 /. 32.0) () |] in
  let bd = Occupancy.kernel_time cfg blocks in
  checkf "compute bound"
    (1.0e6 /. (32.0 /. cfg.Config.issue_dep_stall))
    bd.Occupancy.compute_bound

let test_occupancy_full_fill_reaches_issue_width () =
  (* Enough concurrently-issuing lanes: the classic busy/issue bound. *)
  let blocks =
    Array.init 16 (fun _ ->
        block_cost ~busy:1.0e6 ~critical:(1.0e6 /. 128.0) ~threads:128 ())
  in
  let bd = Occupancy.kernel_time cfg blocks in
  let per_sm_busy = 4.0e6 (* 16 blocks over 4 SMs *) in
  checkf "issue-width bound"
    (per_sm_busy /. float_of_int cfg.Config.issue_lanes_per_sm)
    bd.Occupancy.compute_bound

let test_occupancy_memory_bound () =
  let blocks = [| block_cost ~dram:1.0e7 () |] in
  let bd = Occupancy.kernel_time cfg blocks in
  check_bool "memory dominates" true
    (bd.Occupancy.memory_bound >= bd.Occupancy.compute_bound)

let test_occupancy_more_blocks_longer () =
  let mk n = Array.init n (fun _ -> block_cost ~busy:50_000.0 ()) in
  let t1 = (Occupancy.kernel_time cfg (mk 4)).Occupancy.time in
  let t2 = (Occupancy.kernel_time cfg (mk 64)).Occupancy.time in
  check_bool "monotone in blocks" true (t2 > t1)

(* --- Device ----------------------------------------------------------- *)

let test_device_launch_end_to_end () =
  let sp = Memory.space () in
  let out = Memory.falloc sp 64 in
  let report =
    Device.launch ~cfg ~grid:4 ~block:16
      ~init:(fun ~block_id _arena -> block_id)
      ~body:(fun block_id th ->
        let i = (block_id * 16) + th.Thread.tid in
        Memory.fset out th i (float_of_int i))
      ()
  in
  check_int "grid" 4 report.Device.grid;
  for i = 0 to 63 do
    checkf "output" (float_of_int i) (Memory.host_get out i)
  done;
  check_bool "time positive" true (report.Device.time_cycles > 0.0)

let test_device_counters_merged () =
  let sp = Memory.space () in
  let a = Memory.falloc sp 128 in
  let report =
    Device.launch ~cfg ~grid:2 ~block:32
      ~init:(fun ~block_id _ -> block_id)
      ~body:(fun b th -> ignore (Memory.fget a th ((b * 32) + th.Thread.tid)))
      ()
  in
  check_int "loads from both blocks" 64
    report.Device.counters.Counters.global_loads

let test_device_trace_records () =
  let trace = Trace.create () in
  ignore
    (Device.launch ~cfg ~trace ~grid:1 ~block:1
       ~init:(fun ~block_id _ -> block_id)
       ~body:(fun _ th -> Thread.trace th ~tag:"hello" "world")
       ());
  check_int "one event" 1 (Trace.count trace ~tag:"hello")

let test_device_validates () =
  check_bool "bad grid" true
    (try
       ignore
         (Device.launch ~cfg ~grid:0 ~block:32
            ~init:(fun ~block_id _ -> block_id)
            ~body:(fun _ _ -> ())
            ());
       false
     with Invalid_argument _ -> true)

let test_engine_non_warp_multiple () =
  (* the raw engine accepts ragged blocks (the runtime layers add their
     own warp-multiple constraints) *)
  let seen = ref 0 in
  let r =
    Engine.run_block ~cfg ~block_id:0 ~num_threads:40 (fun _ -> incr seen)
  in
  check_int "ran 40" 40 !seen;
  check_int "active" 0 r.Engine.active_lanes
  (* no busy work -> no active lanes *)

(* --- Trace export ------------------------------------------------------ *)

let test_trace_export_json () =
  let trace = Trace.create () in
  ignore
    (Device.launch ~cfg ~trace ~grid:2 ~block:4
       ~init:(fun ~block_id _ -> block_id)
       ~body:(fun _ th ->
         Thread.trace th ~tag:"evt" "a \"quoted\" detail\nline2")
       ());
  let json = Gpusim.Trace_export.to_json trace in
  check_bool "array" true
    (String.length json > 2 && json.[0] = '[');
  check_bool "escaped quote" true (Astring_like.contains json "\\\"quoted\\\"");
  check_bool "escaped newline" true (Astring_like.contains json "\\n");
  check_bool "pid field" true (Astring_like.contains json "\"pid\":1");
  (* 8 threads, one event each *)
  check_int "count" 8 (Trace.count trace ~tag:"evt")

let test_trace_export_file () =
  let trace = Trace.create () in
  Trace.record (Some trace) ~time:1.0 ~block:0 ~tid:0 ~tag:"x" "y";
  let path = Filename.temp_file "ompsimd" ".json" in
  Gpusim.Trace_export.write_file trace ~path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  check_bool "non-empty" true (len > 10)

(* --- Engine stress ------------------------------------------------------ *)

let test_engine_many_barrier_rounds () =
  (* 64 threads through 100 rounds of interleaved warp/block barriers:
     exercises barrier reuse and the run queue at depth *)
  let bar_block = Barrier.create ~expected:64 ~cost:1.0 () in
  let bar_warps =
    Array.init 2 (fun w ->
        Barrier.create ~name:(Printf.sprintf "w%d" w) ~expected:32 ~cost:1.0 ())
  in
  let r =
    Engine.run_block ~cfg ~block_id:0 ~num_threads:64 (fun th ->
        for _ = 1 to 100 do
          Engine.barrier_wait bar_warps.(th.Thread.tid / 32) th;
          Engine.barrier_wait bar_block th
        done)
  in
  check_int "all finished" 64 r.Engine.num_threads;
  check_bool "time accumulated" true (r.Engine.critical_cycles >= 200.0)

let count_substring s sub =
  let n = String.length sub in
  let rec go i acc =
    if n = 0 || i + n > String.length s then acc
    else if String.sub s i n = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_deadlock_reports_same_name_barriers () =
  (* Two live barriers sharing a display name (per-warp barriers made in
     a loop): the deadlock report must list both, which requires keying
     the live set by unique id, not name. *)
  let b0 = Barrier.create ~name:"w" ~expected:2 ~cost:0.0 () in
  let b1 = Barrier.create ~name:"w" ~expected:2 ~cost:0.0 () in
  check_bool "ids distinct" true (Barrier.id b0 <> Barrier.id b1);
  match
    Engine.run_block ~cfg ~block_id:0 ~num_threads:4 (fun th ->
        if th.Thread.tid = 0 then Engine.barrier_wait b0 th
        else if th.Thread.tid = 2 then Engine.barrier_wait b1 th)
  with
  | _ -> Alcotest.fail "expected Deadlock"
  | exception Engine.Deadlock msg ->
      (* the report carries each barrier's unique id (name#id), so two
         same-name barriers stay distinguishable *)
      check_int "first stuck barrier reported" 1
        (count_substring msg (Printf.sprintf "[w#%d 1/2]" (Barrier.id b0)));
      check_int "second stuck barrier reported" 1
        (count_substring msg (Printf.sprintf "[w#%d 1/2]" (Barrier.id b1)))

(* --- Pool / parallel determinism -------------------------------------- *)

let test_pool_parallel_init () =
  check_int "env var name is stable" 0
    (String.compare Pool.env_var "OMPSIMD_DOMAINS");
  let seq = Pool.create () in
  check_int "default is sequential" 0 (Pool.size seq);
  let r = Pool.parallel_init seq 10 (fun i -> 2 * i) in
  Array.iteri (fun i v -> check_int "inline slot" (2 * i) v) r;
  Pool.shutdown seq;
  let pool = Pool.create ~domains:3 () in
  check_int "workers" 3 (Pool.size pool);
  let r = Pool.parallel_init pool 100 (fun i -> i * i) in
  Array.iteri (fun i v -> check_int "slot" (i * i) v) r;
  (* repeated jobs reuse the same workers *)
  let r2 = Pool.parallel_init pool 5 string_of_int in
  Alcotest.(check (array string))
    "second job" [| "0"; "1"; "2"; "3"; "4" |] r2;
  (* the lowest-index exception is the one re-raised, as in a
     left-to-right sequential run *)
  check_bool "lowest-index exception" true
    (try
       ignore
         (Pool.parallel_init pool 10 (fun i ->
              if i >= 4 then failwith (string_of_int i) else i));
       false
     with Failure msg -> msg = "4");
  (* the pool survives a failed job *)
  let r3 = Pool.parallel_init pool 8 (fun i -> i + 1) in
  check_int "after failure" 8 r3.(7);
  Pool.shutdown pool

let check_reports_identical label (a : Device.report) (b : Device.report) =
  check_int (label ^ ": grid") a.Device.grid b.Device.grid;
  check_bool
    (label ^ ": time bit-identical")
    true
    (Float.equal a.Device.time_cycles b.Device.time_cycles);
  check_bool (label ^ ": breakdown identical") true
    (a.Device.breakdown = b.Device.breakdown);
  check_bool (label ^ ": merged counters identical") true
    (Counters.equal a.Device.counters b.Device.counters);
  check_bool (label ^ ": block costs identical") true
    (a.Device.block_costs = b.Device.block_costs)

(* Uniform grid (the ideal kernel: every row costs the same), 7 teams so
   the trailing team gets a short chunk — two equivalence classes. *)
let test_determinism_uniform_grid () =
  let t =
    Workloads.Ideal.generate
      { Workloads.Ideal.rows = 100; inner = 32; flops_per_elem = 16; seed = 3 }
  in
  let mode3 = Workloads.Harness.spmd_simd ~group_size:4 in
  let run ?pool ?dedup () =
    (Workloads.Ideal.run ~cfg ?pool ?dedup ~num_teams:7 ~threads:32 ~mode3 t)
      .Workloads.Harness.report
  in
  let seq = run () in
  let pool0 = Pool.create ~domains:0 () in
  let r0 = run ~pool:pool0 () in
  Pool.shutdown pool0;
  let pool4 = Pool.create ~domains:4 () in
  let r4 = run ~pool:pool4 () in
  let rdedup = run ~pool:pool4 ~dedup:true () in
  let rdedup_seq = run ~dedup:true () in
  Pool.shutdown pool4;
  check_reports_identical "no pool vs domains=0" seq r0;
  check_reports_identical "no pool vs domains=4" seq r4;
  check_reports_identical "no pool vs dedup+domains=4" seq rdedup;
  check_reports_identical "no pool vs dedup" seq rdedup_seq

(* Irregular grid (banded spmv: data-dependent row lengths) — no
   block_class, but pooled simulation must still match bit-for-bit. *)
let test_determinism_irregular_grid () =
  let t =
    Workloads.Spmv.generate
      {
        Workloads.Spmv.rows = 80;
        cols = 80;
        profile = Workloads.Spmv.Banded { mean = 8; spread = 6 };
        band = 16;
        seed = 1;
      }
  in
  let mode3 = Workloads.Harness.generic_simd ~group_size:4 in
  let run ?pool () =
    (Workloads.Spmv.run_simd ~cfg ?pool ~num_teams:7 ~threads:32 ~mode3 t)
      .Workloads.Harness.report
  in
  let seq = run () in
  let pool0 = Pool.create ~domains:0 () in
  let r0 = run ~pool:pool0 () in
  Pool.shutdown pool0;
  let pool4 = Pool.create ~domains:4 () in
  let r4 = run ~pool:pool4 () in
  Pool.shutdown pool4;
  check_reports_identical "no pool vs domains=0" seq r0;
  check_reports_identical "no pool vs domains=4" seq r4

(* The coalescing-key memo in Memory.line_of is exact: with the LRU
   disabled every counter, cost and the simulated time must come out
   bit-identical on a workload mixing strided and coalesced traffic. *)
let test_line_memo_equivalence () =
  let t =
    Workloads.Spmv.generate
      {
        Workloads.Spmv.rows = 60;
        cols = 60;
        profile = Workloads.Spmv.Banded { mean = 7; spread = 5 };
        band = 12;
        seed = 9;
      }
  in
  let mode3 = Workloads.Harness.spmd_simd ~group_size:4 in
  let run () =
    (Workloads.Spmv.run_simd ~cfg ~num_teams:5 ~threads:32 ~mode3 t)
      .Workloads.Harness.report
  in
  check_bool "memo on by default" true !Memory.line_memo_enabled;
  let with_memo = run () in
  Memory.line_memo_enabled := false;
  let without_memo =
    Fun.protect ~finally:(fun () -> Memory.line_memo_enabled := true) run
  in
  check_reports_identical "line memo on vs off" with_memo without_memo

let test_pool_trace_stays_sequential () =
  (* A trace forces the sequential path even when a pool is supplied: the
     full grid is simulated and every event lands in the one log. *)
  let pool = Pool.create ~domains:4 () in
  let trace = Trace.create () in
  ignore
    (Device.launch ~cfg ~pool ~trace ~grid:3 ~block:4
       ~block_class:(fun _ -> 0)
       ~init:(fun ~block_id _ -> block_id)
       ~body:(fun _ th -> Thread.trace th ~tag:"evt" "x")
       ());
  Pool.shutdown pool;
  check_int "all threads traced" 12 (Trace.count trace ~tag:"evt")

(* --- qcheck properties ------------------------------------------------ *)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"barrier release = max arrival + cost" ~count:100
      (pair (int_range 2 32) (list_of_size Gen.(return 8) (float_range 0.0 1000.0)))
      (fun (_, ticks) ->
        let ticks = Array.of_list ticks in
        let bar = Barrier.create ~expected:8 ~cost:5.0 () in
        let finals = Array.make 8 0.0 in
        ignore
          (Engine.run_block ~cfg ~block_id:0 ~num_threads:8 (fun th ->
               Thread.tick th ticks.(th.Thread.tid);
               Engine.barrier_wait bar th;
               finals.(th.Thread.tid) <- Thread.clock th));
        let expected = Array.fold_left Float.max 0.0 ticks +. 5.0 in
        Array.for_all (fun c -> abs_float (c -. expected) < 1e-6) finals);
    Test.make ~name:"linebuf hit implies prior touch" ~count:200
      (pair (int_range 1 16) (list (int_range 0 64)))
      (fun (cap, touches) ->
        let lb = Linebuf.create ~capacity:cap ~coalesce_window:0.0 in
        let seen = Hashtbl.create 16 in
        List.for_all
          (fun l ->
            let vtime = float_of_int (Hashtbl.length seen) in
            let hit = Linebuf.is_resident (fst (Linebuf.touch lb ~vtime ~lane:0 l)) in
            let ok = (not hit) || Hashtbl.mem seen l in
            Hashtbl.replace seen l ();
            ok)
          touches);
    Test.make ~name:"occupancy bounded by device caps" ~count:200
      (pair (int_range 1 32) (int_range 0 20_000))
      (fun (warps, smem) ->
        let threads = warps * 32 in
        let r = Occupancy.blocks_per_sm cfg ~threads_per_block:threads ~smem_per_block:smem in
        r <= cfg.Config.max_blocks_per_sm
        && (r = 0 || r * threads <= cfg.Config.max_threads_per_sm));
  ]

let suite =
  [
    ( "gpusim.config",
      [
        Alcotest.test_case "presets valid" `Quick test_config_presets_valid;
        Alcotest.test_case "validation" `Quick test_config_validation_catches;
        Alcotest.test_case "amd flag" `Quick test_config_amd_flag;
      ] );
    ( "gpusim.zoo",
      [
        Alcotest.test_case "registry" `Quick test_zoo_registry;
        Alcotest.test_case "resolve" `Quick test_zoo_resolve;
        Alcotest.test_case "spec roundtrip" `Quick test_config_spec_roundtrip;
        Alcotest.test_case "spec errors" `Quick test_config_of_spec_errors;
        QCheck_alcotest.to_alcotest zoo_width_differential;
      ] );
    ( "gpusim.linebuf",
      [
        Alcotest.test_case "hit/miss" `Quick test_linebuf_hit_miss;
        Alcotest.test_case "infinite window below capacity" `Quick
          test_linebuf_window_infinite_below_capacity;
        Alcotest.test_case "residency window" `Quick test_linebuf_residency_window;
        Alcotest.test_case "concurrent vtimes overlap" `Quick
          test_linebuf_concurrent_vtimes_overlap;
        Alcotest.test_case "clear" `Quick test_linebuf_clear;
      ] );
    ( "gpusim.counters",
      [
        Alcotest.test_case "merge" `Quick test_counters_merge;
        Alcotest.test_case "coalescing ratio" `Quick test_counters_coalescing_ratio;
        Alcotest.test_case "equal" `Quick test_counters_equal;
      ] );
    ( "gpusim.engine",
      [
        Alcotest.test_case "runs all threads" `Quick test_engine_runs_all_threads;
        Alcotest.test_case "barrier aligns clocks" `Quick test_engine_barrier_aligns_clocks;
        Alcotest.test_case "barrier reusable" `Quick test_engine_barrier_reusable;
        Alcotest.test_case "barrier orders writes" `Quick test_engine_barrier_orders_writes;
        Alcotest.test_case "deadlock detection" `Quick test_engine_deadlock_detection;
        Alcotest.test_case "size validation" `Quick test_engine_rejects_bad_sizes;
        Alcotest.test_case "busy excludes wait" `Quick test_engine_busy_excludes_wait;
      ] );
    ( "gpusim.memory",
      [
        Alcotest.test_case "float roundtrip" `Quick test_memory_roundtrip;
        Alcotest.test_case "int roundtrip" `Quick test_memory_int_roundtrip;
        Alcotest.test_case "bounds" `Quick test_memory_bounds;
        Alcotest.test_case "consecutive coalesce" `Quick test_memory_coalescing_consecutive;
        Alcotest.test_case "strided uncoalesced" `Quick test_memory_strided_access_uncoalesced;
        Alcotest.test_case "warp lanes share lines" `Quick test_memory_warp_lanes_share_lines;
        Alcotest.test_case "dram byte accounting" `Quick test_memory_dram_bytes_accounting;
        Alcotest.test_case "atomic add" `Quick test_memory_atomic_add;
        Alcotest.test_case "atomic contention" `Quick test_memory_atomic_contention_cost;
        Alcotest.test_case "of arrays" `Quick test_memory_of_arrays;
      ] );
    ( "gpusim.shared",
      [
        Alcotest.test_case "alloc/overflow" `Quick test_shared_alloc_and_overflow;
        Alcotest.test_case "stack discipline" `Quick test_shared_stack_discipline;
        Alcotest.test_case "release validation" `Quick test_shared_release_validation;
      ] );
    ( "gpusim.occupancy",
      [
        Alcotest.test_case "thread limit" `Quick test_occupancy_thread_limit;
        Alcotest.test_case "smem limit" `Quick test_occupancy_smem_limit;
        Alcotest.test_case "unlaunchable" `Quick test_occupancy_unlaunchable;
        Alcotest.test_case "latency hiding" `Quick test_occupancy_latency_hiding;
        Alcotest.test_case "throughput bound" `Quick test_occupancy_throughput_bound;
        Alcotest.test_case "full fill reaches issue width" `Quick
          test_occupancy_full_fill_reaches_issue_width;
        Alcotest.test_case "memory bound" `Quick test_occupancy_memory_bound;
        Alcotest.test_case "monotone in blocks" `Quick test_occupancy_more_blocks_longer;
      ] );
    ( "gpusim.device",
      [
        Alcotest.test_case "end to end" `Quick test_device_launch_end_to_end;
        Alcotest.test_case "counters merged" `Quick test_device_counters_merged;
        Alcotest.test_case "trace" `Quick test_device_trace_records;
        Alcotest.test_case "validation" `Quick test_device_validates;
        Alcotest.test_case "trace export json" `Quick test_trace_export_json;
        Alcotest.test_case "trace export file" `Quick test_trace_export_file;
        Alcotest.test_case "barrier stress" `Quick test_engine_many_barrier_rounds;
        Alcotest.test_case "non-warp-multiple block" `Quick
          test_engine_non_warp_multiple;
        Alcotest.test_case "same-name barriers in deadlock report" `Quick
          test_deadlock_reports_same_name_barriers;
      ] );
    ( "gpusim.pool",
      [
        Alcotest.test_case "parallel_init" `Quick test_pool_parallel_init;
        Alcotest.test_case "uniform grid determinism" `Quick
          test_determinism_uniform_grid;
        Alcotest.test_case "line memo on/off identical" `Quick
          test_line_memo_equivalence;
        Alcotest.test_case "irregular grid determinism" `Quick
          test_determinism_irregular_grid;
        Alcotest.test_case "trace stays sequential" `Quick
          test_pool_trace_stays_sequential;
      ] );
    ("gpusim.properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
  ]
