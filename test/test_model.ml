(* Cost-model invariants ("physics tests"): regression net for the
   calibration.  Each asserts a directional property the model must keep
   for the paper's results to mean anything — see docs/COSTMODEL.md. *)

module Config = Gpusim.Config
module Memory = Gpusim.Memory
module Device = Gpusim.Device
module Thread = Gpusim.Thread
module Mode = Omprt.Mode
module Team = Omprt.Team
module Harness = Workloads.Harness
module Spmv = Workloads.Spmv

let cfg = Config.small
let check_bool = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

let compute_kernel ~flops ~threads ~grid () =
  Device.launch ~cfg ~grid ~block:threads
    ~init:(fun ~block_id _ -> block_id)
    ~body:(fun _ th -> Thread.tick th (float_of_int flops *. 2.0))
    ()

let test_flops_scale_compute_bound () =
  let t1 = (compute_kernel ~flops:10_000 ~threads:128 ~grid:8 ()).Device.breakdown in
  let t2 = (compute_kernel ~flops:20_000 ~threads:128 ~grid:8 ()).Device.breakdown in
  checkf "2x flops = 2x compute bound"
    (2.0 *. t1.Gpusim.Occupancy.compute_bound)
    t2.Gpusim.Occupancy.compute_bound

let test_more_sms_faster () =
  let time sms =
    let cfg = Config.with_sms Config.a100 sms in
    let r =
      Device.launch ~cfg ~grid:64 ~block:128
        ~init:(fun ~block_id _ -> block_id)
        ~body:(fun _ th -> Thread.tick th 5000.0)
        ()
    in
    r.Device.time_cycles
  in
  check_bool "16 SMs beat 4" true (time 16 < time 4)

let test_determinism () =
  let t = Spmv.generate { Spmv.default_shape with Spmv.rows = 256; cols = 256 } in
  let run () =
    Harness.time
      (Spmv.run_simd ~cfg ~num_teams:4 ~threads:64
         ~mode3:(Harness.generic_simd ~group_size:8) t)
  in
  checkf "identical cycles across runs" (run ()) (run ())

let test_strided_worse_than_sequential () =
  let sp = Memory.space () in
  let a = Memory.falloc sp 4096 in
  let time stride =
    let r =
      Device.launch ~cfg ~grid:1 ~block:32
        ~init:(fun ~block_id _ -> block_id)
        ~body:(fun _ th ->
          for i = 0 to 63 do
            ignore
              (Memory.fget a th
                 (((th.Thread.tid * 64) + (i * stride)) mod 4096))
          done)
        ()
    in
    (Memory.l2_reset sp;
     r.Device.time_cycles)
  in
  let sequential = time 1 in
  let strided = time 16 in
  check_bool "strided access costs more" true (strided > sequential)

let test_warm_l2_not_slower () =
  let t = Spmv.generate { Spmv.default_shape with Spmv.rows = 512; cols = 512 } in
  let mode3 = Harness.generic_simd ~group_size:8 in
  let cold =
    Harness.time (Spmv.run_simd ~cfg ~reset_l2:true ~num_teams:4 ~threads:64 ~mode3 t)
  in
  let warm =
    Harness.time (Spmv.run_simd ~cfg ~reset_l2:false ~num_teams:4 ~threads:64 ~mode3 t)
  in
  check_bool "warm run not slower" true (warm <= cold)

let test_generic_teams_extra_warp_in_block_costs () =
  let params mode =
    { Team.num_teams = 2; num_threads = 64; teams_mode = mode;
      sharing_bytes = Omprt.Sharing.default_bytes }
  in
  let report mode =
    Omprt.Target.launch ~cfg ~params:(params mode) (fun _ -> ())
  in
  let spmd = report Mode.Spmd and generic = report Mode.Generic in
  Alcotest.(check int) "spmd block" 64
    spmd.Device.block_costs.(0).Gpusim.Occupancy.threads;
  Alcotest.(check int) "generic block has the main warp" 96
    generic.Device.block_costs.(0).Gpusim.Occupancy.threads

let test_remainder_waste_grows_busy () =
  (* a 9-trip simd loop wastes most of a 32-wide group's slots *)
  let busy gs =
    let params =
      { Team.num_teams = 1; num_threads = 32; teams_mode = Mode.Spmd;
        sharing_bytes = Omprt.Sharing.default_bytes }
    in
    let r =
      Omprt.Target.launch ~cfg ~params (fun ctx ->
          Omprt.Parallel.parallel ctx ~mode:Mode.Spmd ~simd_len:gs
            (fun ctx _ ->
              Omprt.Workshare.distribute_parallel_for ctx ~trip:(32 / gs)
                (fun _ ->
                  Omprt.Simd.simd ctx ~trip:9 (fun ctx _ _ ->
                      Team.charge_flops ctx 50))))
    in
    Gpusim.Counters.busy_cycles r.Device.counters
  in
  (* normalize per useful iteration: (32/gs) rows x 9 iterations each *)
  let per_iter gs = busy gs /. float_of_int (32 / gs * 9) in
  check_bool "32-wide group wastes more slots per iteration than 1-wide" true
    (per_iter 32 > per_iter 1 *. 2.0)

let test_barrier_cost_mostly_stall () =
  (* a barrier-heavy kernel's busy must stay far below its clock *)
  let bar = Gpusim.Barrier.create ~expected:32 ~cost:48.0 () in
  let r =
    Gpusim.Engine.run_block ~cfg ~block_id:0 ~num_threads:32 (fun th ->
        for _ = 1 to 50 do
          Gpusim.Engine.barrier_wait bar th
        done)
  in
  let per_lane_busy =
    r.Gpusim.Engine.busy_cycles /. 32.0
  in
  check_bool "stall dominates busy" true
    (per_lane_busy < r.Gpusim.Engine.critical_cycles /. 4.0)

let test_dispatch_depth_costs () =
  (* deeper if-cascade entries take longer (the E4 mechanism, unit level) *)
  let arena = Gpusim.Shared.arena_of_capacity 8192 in
  let team =
    Team.create ~cfg ~arena
      ~params:
        { Team.num_teams = 1; num_threads = 32; teams_mode = Mode.Spmd;
          sharing_bytes = 1024 }
      ~block_id:0
  in
  team.Team.dispatch_table_size <- 16;
  let cost fn_id =
    let clock = ref 0.0 in
    ignore
      (Gpusim.Engine.run_block ~cfg ~block_id:0 ~num_threads:1 (fun th ->
           let ctx = { Team.th; team } in
           Team.invoke_microtask ctx ~fn_id (fun () -> ());
           clock := Thread.clock th));
    !clock
  in
  check_bool "entry 15 > entry 0" true (cost 15 > cost 0);
  check_bool "indirect > entry 0" true (cost 99 > cost 0)

let suite =
  [
    ( "model.invariants",
      [
        Alcotest.test_case "flops scale compute bound" `Quick
          test_flops_scale_compute_bound;
        Alcotest.test_case "more SMs faster" `Quick test_more_sms_faster;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "strided worse" `Quick test_strided_worse_than_sequential;
        Alcotest.test_case "warm L2 not slower" `Quick test_warm_l2_not_slower;
        Alcotest.test_case "extra main warp" `Quick
          test_generic_teams_extra_warp_in_block_costs;
        Alcotest.test_case "remainder waste" `Quick test_remainder_waste_grows_busy;
        Alcotest.test_case "barriers are stall" `Quick test_barrier_cost_mostly_stall;
        Alcotest.test_case "dispatch depth" `Quick test_dispatch_depth_costs;
      ] );
  ]
