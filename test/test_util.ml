(* Unit and property tests for the ompsimd_util library. *)

module Prng = Ompsimd_util.Prng
module Stats = Ompsimd_util.Stats
module Mask = Ompsimd_util.Mask
module Table = Ompsimd_util.Table

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- Prng ------------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_prng_int_bounds () =
  let g = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_in_bounds () =
  let g = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int_in g ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_prng_uniform_range () =
  let g = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let u = Prng.uniform g in
    Alcotest.(check bool) "in [0,1)" true (u >= 0.0 && u < 1.0)
  done

let test_prng_uniform_mean () =
  let g = Prng.create ~seed:3 in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.uniform g
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_prng_normal_moments () =
  let g = Prng.create ~seed:5 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Prng.normal g ~mu:3.0 ~sigma:2.0) in
  let m = Stats.mean xs and sd = Stats.stddev xs in
  Alcotest.(check bool) "mean approx 3" true (abs_float (m -. 3.0) < 0.1);
  Alcotest.(check bool) "stddev approx 2" true (abs_float (sd -. 2.0) < 0.1)

let test_prng_geometric () =
  let g = Prng.create ~seed:9 in
  for _ = 1 to 500 do
    Alcotest.(check bool) "non-negative" true (Prng.geometric g ~p:0.3 >= 0)
  done;
  check Alcotest.int "p=1 is 0" 0 (Prng.geometric g ~p:1.0)

let test_prng_zipf_range () =
  let g = Prng.create ~seed:13 in
  for _ = 1 to 1000 do
    let v = Prng.zipf g ~n:50 ~s:1.2 in
    Alcotest.(check bool) "in [1,n]" true (v >= 1 && v <= 50)
  done

let test_prng_zipf_skew () =
  let g = Prng.create ~seed:17 in
  let n = 5000 in
  let ones = ref 0 in
  for _ = 1 to n do
    if Prng.zipf g ~n:100 ~s:1.5 = 1 then incr ones
  done;
  (* rank 1 of a zipf(1.5) on [1,100] has probability ~0.38 *)
  Alcotest.(check bool) "rank 1 dominates" true (!ones > n / 4)

let test_prng_shuffle_permutes () =
  let g = Prng.create ~seed:21 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 100 Fun.id) sorted

let test_prng_split_independent () =
  let g = Prng.create ~seed:33 in
  let g1 = Prng.split g in
  let g2 = Prng.split g in
  Alcotest.(check bool) "split streams differ" true
    (Prng.bits64 g1 <> Prng.bits64 g2)

let test_prng_invalid_args () =
  let g = Prng.create ~seed:1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0));
  Alcotest.check_raises "int_in" (Invalid_argument "Prng.int_in: hi < lo")
    (fun () -> ignore (Prng.int_in g ~lo:3 ~hi:2))

(* --- Stats ------------------------------------------------------------ *)

let test_stats_mean () =
  checkf "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  checkf "empty mean" 0.0 (Stats.mean [||])

let test_stats_variance () =
  checkf "variance" (5.0 /. 3.0) (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |]);
  checkf "single" 0.0 (Stats.variance [| 42.0 |])

let test_stats_geomean () =
  checkf "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |]);
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.geomean: all samples must be positive") (fun () ->
      ignore (Stats.geomean [| 1.0; 0.0 |]))

let test_stats_percentile () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  checkf "p0" 1.0 (Stats.percentile xs 0.0);
  checkf "p100" 4.0 (Stats.percentile xs 100.0);
  checkf "median" 2.5 (Stats.median xs)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0 |] in
  check Alcotest.int "n" 3 s.Stats.n;
  checkf "mean" 2.0 s.Stats.mean;
  checkf "min" 1.0 s.Stats.min;
  checkf "max" 3.0 s.Stats.max

let test_stats_speedup () =
  checkf "speedup" 2.0 (Stats.speedup ~baseline:4.0 2.0);
  Alcotest.check_raises "zero time"
    (Invalid_argument "Stats.speedup: non-positive time") (fun () ->
      ignore (Stats.speedup ~baseline:1.0 0.0))

(* --- Mask ------------------------------------------------------------- *)

let test_mask_group_partition () =
  List.iter
    (fun ws ->
      List.iter
        (fun gs ->
          if ws mod gs = 0 then begin
            let groups = ws / gs in
            let union = ref Mask.empty in
            for g = 0 to groups - 1 do
              let m = Mask.group ~warp_size:ws ~group_size:gs ~group_index:g in
              check Alcotest.int "group size" gs (Mask.popcount m);
              Alcotest.(check bool) "disjoint" true (Mask.disjoint !union m);
              union := Mask.union !union m
            done;
            check Alcotest.int "covers warp" (Mask.full ~warp_size:ws) !union
          end)
        [ 1; 2; 4; 8; 16; 32; 64 ])
    [ 8; 16; 32; 64 ]

let test_mask_lowest () =
  check Alcotest.int "lowest of group 1 size 8" 8
    (Mask.lowest (Mask.group ~warp_size:32 ~group_size:8 ~group_index:1));
  Alcotest.check_raises "empty" (Invalid_argument "Mask.lowest: empty mask")
    (fun () -> ignore (Mask.lowest Mask.empty))

let test_mask_iter_vs_list () =
  let m = Mask.group ~warp_size:64 ~group_size:16 ~group_index:3 in
  check
    Alcotest.(list int)
    "to_list"
    [ 48; 49; 50; 51; 52; 53; 54; 55; 56; 57; 58; 59; 60; 61; 62; 63 ]
    (Mask.to_list m);
  check Alcotest.int "popcount" 16 (Mask.popcount m);
  Alcotest.(check bool) "mem hi lane" true (Mask.mem m 63);
  Alcotest.(check bool) "not mem" false (Mask.mem m 47)

let test_mask_subset () =
  let small = Mask.group ~warp_size:32 ~group_size:4 ~group_index:0 in
  let big = Mask.group ~warp_size:32 ~group_size:16 ~group_index:0 in
  Alcotest.(check bool) "subset" true (Mask.subset small ~of_:big);
  Alcotest.(check bool) "not subset" false (Mask.subset big ~of_:small)

let test_mask_union_contiguity () =
  let g i = Mask.group ~warp_size:32 ~group_size:8 ~group_index:i in
  check Alcotest.int "adjacent groups fuse" 16 (Mask.popcount (Mask.union (g 0) (g 1)));
  check Alcotest.int "overlap folds" 8 (Mask.popcount (Mask.union (g 2) (g 2)));
  Alcotest.check_raises "gap rejected"
    (Invalid_argument "Mask.union: result not contiguous") (fun () ->
      ignore (Mask.union (g 0) (g 2)))

let test_mask_invalid () =
  Alcotest.check_raises "bad size"
    (Invalid_argument "Mask.group: group_size must divide the warp") (fun () ->
      ignore (Mask.group ~warp_size:32 ~group_size:3 ~group_index:0));
  Alcotest.check_raises "bad index"
    (Invalid_argument "Mask.group: group_index out of range") (fun () ->
      ignore (Mask.group ~warp_size:32 ~group_size:8 ~group_index:4));
  Alcotest.check_raises "bad warp"
    (Invalid_argument "Mask.full: warp size out of range") (fun () ->
      ignore (Mask.full ~warp_size:65))

(* --- Table ------------------------------------------------------------ *)

let test_table_render () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("x", Table.Right) ] in
  Table.add_row t [ "alpha"; "1.00" ];
  Table.add_separator t;
  Table.add_row t [ "b"; "12.50" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains alpha" true
    (Astring_like.contains s "alpha");
  Alcotest.(check bool) "right aligned" true (Astring_like.contains s " 1.00 |")

let test_table_bad_row () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_table_cells () =
  check Alcotest.string "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  check Alcotest.string "int" "42" (Table.cell_int 42)

(* --- qcheck properties ------------------------------------------------ *)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"prng.int always in bounds" ~count:500
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let g = Prng.create ~seed in
        let v = Prng.int g bound in
        v >= 0 && v < bound);
    Test.make ~name:"mask.group masks partition the warp" ~count:200
      (pair (int_range 0 6) (int_range 3 6))
      (fun (k, w) ->
        let ws = 1 lsl w in
        let gs = 1 lsl min k w in
        let acc = ref 0 in
        for g = 0 to (ws / gs) - 1 do
          acc :=
            !acc
            + Mask.popcount
                (Mask.group ~warp_size:ws ~group_size:gs ~group_index:g)
        done;
        !acc = ws);
    Test.make ~name:"stats.percentile is monotone" ~count:200
      (pair (list_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
         (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
      (fun (xs, (p1, p2)) ->
        let a = Array.of_list xs in
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        Stats.percentile a lo <= Stats.percentile a hi +. 1e-9);
    Test.make ~name:"prng.shuffle preserves multiset" ~count:200
      (pair small_int (list small_int))
      (fun (seed, xs) ->
        let g = Prng.create ~seed in
        let a = Array.of_list xs in
        Prng.shuffle g a;
        List.sort compare (Array.to_list a) = List.sort compare xs);
  ]

let suite =
  [
    ( "util.prng",
      [
        Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "int_in bounds" `Quick test_prng_int_in_bounds;
        Alcotest.test_case "uniform range" `Quick test_prng_uniform_range;
        Alcotest.test_case "uniform mean" `Quick test_prng_uniform_mean;
        Alcotest.test_case "normal moments" `Quick test_prng_normal_moments;
        Alcotest.test_case "geometric" `Quick test_prng_geometric;
        Alcotest.test_case "zipf range" `Quick test_prng_zipf_range;
        Alcotest.test_case "zipf skew" `Quick test_prng_zipf_skew;
        Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        Alcotest.test_case "split independence" `Quick test_prng_split_independent;
        Alcotest.test_case "invalid args" `Quick test_prng_invalid_args;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "variance" `Quick test_stats_variance;
        Alcotest.test_case "geomean" `Quick test_stats_geomean;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "summary" `Quick test_stats_summary;
        Alcotest.test_case "speedup" `Quick test_stats_speedup;
      ] );
    ( "util.mask",
      [
        Alcotest.test_case "group partition" `Quick test_mask_group_partition;
        Alcotest.test_case "lowest" `Quick test_mask_lowest;
        Alcotest.test_case "iter/to_list" `Quick test_mask_iter_vs_list;
        Alcotest.test_case "subset" `Quick test_mask_subset;
        Alcotest.test_case "union contiguity" `Quick test_mask_union_contiguity;
        Alcotest.test_case "invalid" `Quick test_mask_invalid;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "bad row" `Quick test_table_bad_row;
        Alcotest.test_case "cells" `Quick test_table_cells;
      ] );
    ("util.properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
  ]
