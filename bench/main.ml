(* bench/main.exe — regenerates every table and figure of the paper's
   evaluation section and times the harness itself with Bechamel.

   Part 1 prints the scientific output: the Fig 9 and Fig 10 series plus
   the E3–E7 ablations from DESIGN.md, on the quarter-A100 device (same
   per-SM behaviour as the full device, a quarter of the simulation
   cost; see EXPERIMENTS.md).  Set OMPSIMD_BENCH_SCALE (default 1.0) or
   OMPSIMD_BENCH_DEVICE=a100|a100q|small to override.

   Part 2 registers one Bechamel Test.make per experiment, measuring the
   host-side cost of regenerating it at a reduced scale — the number a
   developer watches when optimizing the simulator. *)

open Bechamel
open Toolkit

let device () =
  match Sys.getenv_opt "OMPSIMD_BENCH_DEVICE" with
  | Some "a100" -> Gpusim.Config.a100
  | Some "small" -> Gpusim.Config.small
  | Some "a100q" | None -> Gpusim.Config.a100_quarter
  | Some other ->
      Printf.eprintf "unknown OMPSIMD_BENCH_DEVICE %S\n" other;
      exit 2

let scale () =
  match Sys.getenv_opt "OMPSIMD_BENCH_SCALE" with
  | Some s -> float_of_string s
  | None -> 1.0

let print_experiments () =
  let cfg = device () in
  let scale = scale () in
  Printf.printf "device: %s, scale: %.2f\n\n%!" cfg.Gpusim.Config.name scale;
  Experiments.Fig9.print (Experiments.Fig9.run ~scale ~cfg ());
  print_newline ();
  Experiments.Fig10.print (Experiments.Fig10.run ~scale ~cfg ());
  print_newline ();
  Experiments.Sharing_ablation.print
    (Experiments.Sharing_ablation.run ~scale ~cfg ());
  print_newline ();
  Experiments.Dispatch_ablation.print
    (Experiments.Dispatch_ablation.run ~scale ~cfg ());
  print_newline ();
  Experiments.Amd_mode.print (Experiments.Amd_mode.run ~scale:(scale /. 4.) ());
  print_newline ();
  Experiments.Reduction_ablation.print
    (Experiments.Reduction_ablation.run ~scale ~cfg ());
  print_newline ();
  Experiments.Teams_mode_ablation.print
    (Experiments.Teams_mode_ablation.run ~scale ~cfg ());
  print_newline ();
  Experiments.Spmdization_ablation.print
    (Experiments.Spmdization_ablation.run ~scale ~cfg ());
  print_newline ();
  Experiments.Schedule_ablation.print
    (Experiments.Schedule_ablation.run ~scale ~cfg ())

(* --- Bechamel: host cost of regenerating each experiment -------------- *)

let bench_tests () =
  let cfg = Gpusim.Config.small in
  let s = 0.25 in
  [
    Test.make ~name:"fig9 (E1)"
      (Staged.stage (fun () -> ignore (Experiments.Fig9.run ~scale:s ~cfg ())));
    Test.make ~name:"fig10 (E2)"
      (Staged.stage (fun () -> ignore (Experiments.Fig10.run ~scale:s ~cfg ())));
    Test.make ~name:"sharing ablation (E3)"
      (Staged.stage (fun () ->
           ignore (Experiments.Sharing_ablation.run ~scale:s ~cfg ())));
    Test.make ~name:"dispatch ablation (E4)"
      (Staged.stage (fun () ->
           ignore (Experiments.Dispatch_ablation.run ~scale:s ~cfg ())));
    Test.make ~name:"amd mode (E5)"
      (Staged.stage (fun () -> ignore (Experiments.Amd_mode.run ~scale:0.02 ())));
    Test.make ~name:"reduction ablation (E6)"
      (Staged.stage (fun () ->
           ignore (Experiments.Reduction_ablation.run ~scale:s ~cfg ())));
    Test.make ~name:"teams-mode ablation (E7)"
      (Staged.stage (fun () ->
           ignore (Experiments.Teams_mode_ablation.run ~scale:s ~cfg ())));
    Test.make ~name:"spmdization ablation (E8)"
      (Staged.stage (fun () ->
           ignore (Experiments.Spmdization_ablation.run ~scale:s ~cfg ())));
    Test.make ~name:"schedule ablation (E9)"
      (Staged.stage (fun () ->
           ignore (Experiments.Schedule_ablation.run ~scale:0.1 ~cfg ())));
  ]

let run_bechamel () =
  print_endline "Bechamel: host milliseconds to regenerate each experiment";
  print_endline "(reduced scale, sim-small device)";
  let benchmark_cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None ()
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all benchmark_cfg Instance.[ monotonic_clock ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "  %-28s %10.1f ms/run\n%!" name (est /. 1e6)
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
        ols)
    (bench_tests ())

let () =
  print_experiments ();
  print_newline ();
  run_bechamel ()
