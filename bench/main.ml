(* bench/main.exe — regenerates every table and figure of the paper's
   evaluation section and times the harness itself with Bechamel.

   Part 1 prints the scientific output: the Fig 9 and Fig 10 series plus
   the E3–E7 ablations from DESIGN.md, on the quarter-A100 device (same
   per-SM behaviour as the full device, a quarter of the simulation
   cost; see EXPERIMENTS.md).  Set OMPSIMD_BENCH_SCALE (default 1.0) or
   OMPSIMD_BENCH_DEVICE=a100|a100q|small to override.

   Part 2 registers one Bechamel Test.make per experiment, measuring the
   host-side cost of regenerating it at a reduced scale — the number a
   developer watches when optimizing the simulator.

   Block simulation fans out over OMPSIMD_DOMAINS host domains (0 =
   sequential; unset = cores - 1, which also caps explicit requests),
   and OMPSIMD_BENCH_DEDUP=0 disables
   the homogeneous-grid dedup fast path on the uniform Fig 9 kernels
   (default on); the reports are bit-identical under every combination.
   OMPSIMD_BENCH_QUOTA overrides Bechamel's per-test second budget, and
   OMPSIMD_BENCH_JSON=path additionally writes the ms/run estimates and
   the minor-GC MB allocated per run as JSON, so runs under different
   settings can be diffed (see tools/bench_smoke.sh and
   BENCH_gpusim.json). *)

open Bechamel
open Toolkit

(* Knob reads go through Ompsimd_util.Env: blank values mean unset. *)
module Env = Ompsimd_util.Env

let device () =
  match Env.var "OMPSIMD_BENCH_DEVICE" with
  | Some "a100" -> Gpusim.Config.a100
  | Some "small" -> Gpusim.Config.small
  | Some "a100q" | None -> Gpusim.Config.a100_quarter
  | Some other ->
      Printf.eprintf "unknown OMPSIMD_BENCH_DEVICE %S\n" other;
      exit 2

let scale () = Env.float "OMPSIMD_BENCH_SCALE" ~default:1.0
let quota () = Env.float "OMPSIMD_BENCH_QUOTA" ~default:1.0

let dedup () =
  match Env.var "OMPSIMD_BENCH_DEDUP" with
  | Some "0" -> false
  | Some _ | None -> true

let print_experiments ~pool () =
  let cfg = device () in
  let scale = scale () in
  Printf.printf "device: %s, scale: %.2f, domains: %d, dedup: %b\n\n%!"
    cfg.Gpusim.Config.name scale (Gpusim.Pool.size pool) (dedup ());
  Experiments.Fig9.print
    (Experiments.Fig9.run ~scale ~pool ~dedup:(dedup ()) ~cfg ());
  print_newline ();
  Experiments.Fig10.print (Experiments.Fig10.run ~scale ~pool ~cfg ());
  print_newline ();
  Experiments.Sharing_ablation.print
    (Experiments.Sharing_ablation.run ~scale ~pool ~cfg ());
  print_newline ();
  Experiments.Dispatch_ablation.print
    (Experiments.Dispatch_ablation.run ~scale ~pool ~cfg ());
  print_newline ();
  Experiments.Amd_mode.print
    (Experiments.Amd_mode.run ~scale:(scale /. 4.) ~pool ());
  print_newline ();
  Experiments.Reduction_ablation.print
    (Experiments.Reduction_ablation.run ~scale ~pool ~cfg ());
  print_newline ();
  Experiments.Teams_mode_ablation.print
    (Experiments.Teams_mode_ablation.run ~scale ~pool ~cfg ());
  print_newline ();
  Experiments.Spmdization_ablation.print
    (Experiments.Spmdization_ablation.run ~scale ~pool ~cfg ());
  print_newline ();
  Experiments.Schedule_ablation.print
    (Experiments.Schedule_ablation.run ~scale ~pool ~cfg ())

(* --- Bechamel: host cost of regenerating each experiment -------------- *)

(* Serve scenario: one compile-heavy trace (the deep-pipeline [chain]
   template at three sizes, so three distinct digests over thirty
   requests) replayed against a warm cache (three host compiles, the
   rest hits) and a cold one (capacity 0 — every request recompiles).
   The ratio of the two rows is the cache-warm speedup the service
   buys on the host. *)
let serve_trace =
  List.init 30 (fun i ->
      {
        Serve.Request.id = i;
        at = float_of_int i *. 1500.0;
        kernel = "chain";
        size = 256 + (256 * (i mod 3));
        teams = 1;
        threads = 32;
        simdlen = 8;
        guardize = false;
        deadline = None;
        priority = 0;
        seed = 1 + (i mod 5);
        tenant = "-";
        device = None;
      })

let serve_conf ~cache =
  {
    Serve.Scheduler.cfg = Gpusim.Config.small;
    queue_bound = 16;
    servers = 2;
    cache_capacity = cache;
    max_retries = 2;
    backoff = 500.0;
    breaker = 4;
    slo = None;
    window = 20_000.0;
    knobs = Openmp.Offload.default_knobs;
  }

(* Each case is a named thunk: Bechamel stages it for the ms/run
   estimate, and the allocation probe below calls it directly for the
   minor-GC bytes per run. *)
let bench_cases ~pool () =
  let cfg = Gpusim.Config.small in
  let s = 0.25 in
  [
    ( "fig9 (E1)",
      fun () ->
        ignore (Experiments.Fig9.run ~scale:s ~pool ~dedup:(dedup ()) ~cfg ()) );
    ( "fig10 (E2)",
      fun () -> ignore (Experiments.Fig10.run ~scale:s ~pool ~cfg ()) );
    ( "sharing ablation (E3)",
      fun () -> ignore (Experiments.Sharing_ablation.run ~scale:s ~pool ~cfg ()) );
    ( "dispatch ablation (E4)",
      fun () ->
        ignore (Experiments.Dispatch_ablation.run ~scale:s ~pool ~cfg ()) );
    ( "amd mode (E5)",
      fun () -> ignore (Experiments.Amd_mode.run ~scale:0.02 ~pool ()) );
    ( "reduction ablation (E6)",
      fun () ->
        ignore (Experiments.Reduction_ablation.run ~scale:s ~pool ~cfg ()) );
    ( "teams-mode ablation (E7)",
      fun () ->
        ignore (Experiments.Teams_mode_ablation.run ~scale:s ~pool ~cfg ()) );
    ( "spmdization ablation (E8)",
      fun () ->
        ignore (Experiments.Spmdization_ablation.run ~scale:s ~pool ~cfg ()) );
    ( "schedule ablation (E9)",
      fun () ->
        ignore (Experiments.Schedule_ablation.run ~scale:0.1 ~pool ~cfg ()) );
    ( "serve warm cache",
      fun () ->
        ignore (Serve.Scheduler.run (serve_conf ~cache:32) ~pool serve_trace) );
    ( "serve cold cache",
      fun () ->
        ignore (Serve.Scheduler.run (serve_conf ~cache:0) ~pool serve_trace) );
    (* the same warm-cache trace through the sharded fleet: batching
       merges same-content queue mates into one grid and the content
       memo skips repeat launches entirely, so the delta against "serve
       warm cache" is what the fleet layer buys (fewer real launches)
       net of its placement/stealing bookkeeping *)
    ( "serve fleet warm (4 shards)",
      fun () ->
        let fconf =
          {
            Serve.Fleet.base = serve_conf ~cache:32;
            shards = 4;
            batch = 8;
            steal = true;
            memo = true;
            tenants = [];
            devices = [];
            affinity = true;
            telemetry = false;
            shed = true;
            autoscale = Serve.Autoscale.disabled;
            decay = 0;
          }
        in
        ignore (Serve.Fleet.run fconf ~pool serve_trace) );
    (* the same trace over four shards carrying four different zoo
       devices with affinity placement on: the delta against the
       homogeneous fleet row is the price of heterogeneity — per-device
       memo partitions (each content/device pair really launches once)
       plus the affinity table and sub-ring bookkeeping *)
    ( "serve fleet warm (hetero 4 shards)",
      fun () ->
        let fconf =
          {
            Serve.Fleet.base = serve_conf ~cache:32;
            shards = 4;
            batch = 8;
            steal = true;
            memo = true;
            tenants = [];
            devices = Serve.Fleet.parse_devices "w32-hw,w64-hw,w16-sw,w32-l2tiny";
            affinity = true;
            telemetry = false;
            shed = true;
            autoscale = Serve.Autoscale.disabled;
            decay = 0;
          }
        in
        ignore (Serve.Fleet.run fconf ~pool serve_trace) );
    (* the warm fleet trace under an SLO: telemetry windows close on
       every boundary, the autoscaler evaluates each one, and SLO
       admission watches the windowed p99 — the delta against "serve
       fleet warm (4 shards)" is the operability plane's host cost *)
    ( "serve fleet SLO (4 shards)",
      fun () ->
        let base = { (serve_conf ~cache:32) with Serve.Scheduler.slo = Some 30_000.0 } in
        let fconf =
          {
            Serve.Fleet.base;
            shards = 4;
            batch = 8;
            steal = true;
            memo = true;
            tenants = [];
            devices = [];
            affinity = true;
            telemetry = true;
            shed = true;
            autoscale =
              {
                Serve.Autoscale.enabled = true;
                slo = 30_000.0;
                budget = 8;
                max_extra = 6;
                down = 0.5;
                cooldown = 2;
              };
            decay = 2;
          }
        in
        ignore (Serve.Fleet.run fconf ~pool serve_trace) );
    (* the warm-cache trace compiled through an explicit non-default
       optimization pipeline: the spec lands in the cache key, so the
       first request per kernel recompiles the optimized tier-2 variant
       and the rest serve warm — the delta against "serve warm cache" is
       what the extra passes cost (compile) and buy (run) end to end *)
    ( "serve warm cache (optimized)",
      fun () ->
        let conf = serve_conf ~cache:32 in
        let conf =
          {
            conf with
            Serve.Scheduler.knobs =
              {
                Openmp.Offload.default_knobs with
                Openmp.Offload.passes = "fold,licm,strength,fuse,tile:32,dce";
              };
          }
        in
        ignore (Serve.Scheduler.run conf ~pool serve_trace) );
    (* the same warm-cache trace under a 5% per-block abort plan: the
       delta against "serve warm cache" is the recovery overhead
       (relaunch work + backoff bookkeeping) the service pays for fault
       tolerance *)
    ( "serve faulty (5% aborts)",
      fun () ->
        Unix.putenv "OMPSIMD_FAULTS" "abort=0.05";
        Unix.putenv "OMPSIMD_FAULT_SEED" "7";
        Fun.protect
          ~finally:(fun () ->
            Unix.putenv "OMPSIMD_FAULTS" "";
            Unix.putenv "OMPSIMD_FAULT_SEED" "";
            Gpusim.Fault.refresh_from_env ())
          (fun () ->
            ignore
              (Serve.Scheduler.run (serve_conf ~cache:32) ~pool serve_trace)) );
  ]

(* Minor-GC bytes one run of the case allocates (majors excluded: the
   churn that costs wall clock is the minor-heap traffic).  The
   simulation is deterministic, so a single warmed run measures it
   exactly — this is the number the engine allocation hunts move, and
   tools/bench_compare.sh gates it alongside time. *)
let minor_bytes_per_run fn =
  fn ();
  let before = (Gc.quick_stat ()).Gc.minor_words in
  fn ();
  let after = (Gc.quick_stat ()).Gc.minor_words in
  (after -. before) *. float_of_int (Sys.word_size / 8)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json ~pool path estimates allocs =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"domains\": %d,\n  \"dedup\": %b,\n  \"ms_per_run\": {\n"
    (Gpusim.Pool.size pool) (dedup ());
  List.iteri
    (fun i (name, ms) ->
      Printf.fprintf oc "    \"%s\": %s%s\n" (json_escape name)
        (match ms with Some v -> Printf.sprintf "%.3f" v | None -> "null")
        (if i = List.length estimates - 1 then "" else ","))
    estimates;
  Printf.fprintf oc "  },\n  \"minor_mb_per_run\": {\n";
  List.iteri
    (fun i (name, mb) ->
      Printf.fprintf oc "    \"%s\": %.1f%s\n" (json_escape name) mb
        (if i = List.length allocs - 1 then "" else ","))
    allocs;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let run_bechamel ~pool () =
  print_endline "Bechamel: host milliseconds to regenerate each experiment";
  Printf.printf "(reduced scale, sim-small device, %d domains, dedup %b)\n"
    (Gpusim.Pool.size pool) (dedup ());
  let benchmark_cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second (quota ())) ~kde:None ()
  in
  let cases = bench_cases ~pool () in
  let estimates =
    List.map
      (fun (case_name, fn) ->
        let test = Test.make ~name:case_name (Staged.stage fn) in
        let raw =
          Benchmark.all benchmark_cfg Instance.[ monotonic_clock ] test
        in
        let ols =
          Analyze.all
            (Analyze.ols ~bootstrap:0 ~r_square:false
               ~predictors:[| Measure.run |])
            Instance.monotonic_clock raw
        in
        (* one Test.make = one entry in the OLS table *)
        let acc = ref [] in
        Hashtbl.iter
          (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] ->
                Printf.printf "  %-28s %10.1f ms/run\n%!" name (est /. 1e6);
                acc := (name, Some (est /. 1e6)) :: !acc
            | Some _ | None ->
                Printf.printf "  %-28s (no estimate)\n%!" name;
                acc := (name, None) :: !acc)
          ols;
        !acc)
      cases
    |> List.concat
  in
  print_endline "minor-GC megabytes allocated per run";
  let allocs =
    List.map
      (fun (name, fn) ->
        let mb = minor_bytes_per_run fn /. 1e6 in
        Printf.printf "  %-28s %10.1f MB/run\n%!" name mb;
        (name, mb))
      cases
  in
  match Env.var "OMPSIMD_BENCH_JSON" with
  | Some path -> write_json ~pool path estimates allocs
  | None -> ()

let () =
  let pool = Gpusim.Pool.get_default () in
  print_experiments ~pool ();
  print_newline ();
  run_bechamel ~pool ()
